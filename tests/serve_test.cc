// Tests for the serving engine: concurrent bitwise agreement with the batch
// APIs, plan-cache LRU eviction and build dedup, admission control and
// deadline shedding, and RWR coalescing. Run under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "obs/query_log.h"

#include "gen/power_law.h"
#include "graph/hits.h"
#include "graph/pagerank.h"
#include "graph/rwr.h"
#include "gpusim/device_spec.h"
#include "kernels/spmv.h"
#include "serve/engine.h"
#include "serve/plan_cache.h"
#include "serve/server_stats.h"
#include "sparse/convert.h"

namespace tilespmv::serve {
namespace {

CsrMatrix TestGraph(uint64_t seed = 151) {
  return GenerateRmat(1500, 12000, RmatOptions{.seed = seed});
}

gpusim::DeviceSpec TestDevice() {
  gpusim::DeviceSpec spec;
  EXPECT_TRUE(gpusim::DeviceSpecByName("c1060", &spec));
  return spec;
}

constexpr char kKernel[] = "tile-composite";

// Shared iteration parameters: the engine and the serial references must run
// the exact same FP schedule for bitwise comparison.
constexpr float kDamping = 0.85f;
constexpr float kRestart = 0.9f;
constexpr float kTolerance = 1e-5f;
constexpr int kMaxIterations = 60;

QueryParams BaseParams() {
  QueryParams p;
  p.damping = kDamping;
  p.restart = kRestart;
  p.tolerance = kTolerance;
  p.max_iterations = kMaxIterations;
  return p;
}

// Parks an engine worker for the engine's batch window: the RWR flush task
// sleeps out the window on the worker thread, so (with one worker)
// everything submitted meanwhile stays queued or is shed — which makes the
// shedding and dedup tests below deterministic. Returns the RWR future.
std::future<QueryResponse> ParkWorker(Engine* engine) {
  QueryParams params = BaseParams();
  params.node = 0;
  return engine->Submit("g", QueryKind::kRwr, params);
}

TEST(ServeEngineTest, ConcurrentQueriesBitwiseMatchSerial) {
  CsrMatrix graph = TestGraph();

  // Serial references through the same prepared-plan code paths.
  std::vector<float> ref_pagerank;
  {
    auto kernel = CreateKernel(kKernel, TestDevice());
    ASSERT_EQ(kernel->Setup(PageRankMatrix(graph)).code(), StatusCode::kOk);
    PageRankOptions opts;
    opts.damping = kDamping;
    opts.tolerance = kTolerance;
    opts.max_iterations = kMaxIterations;
    Result<IterativeResult> r = RunPageRankPrepared(*kernel, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ref_pagerank = std::move(r.value().result);
  }
  std::vector<float> ref_authority, ref_hub;
  {
    auto kernel = CreateKernel(kKernel, TestDevice());
    ASSERT_EQ(kernel->Setup(BuildHitsMatrix(graph)).code(), StatusCode::kOk);
    HitsOptions opts;
    opts.tolerance = kTolerance;
    opts.max_iterations = kMaxIterations;
    Result<HitsScores> r = RunHitsPrepared(*kernel, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ref_authority = std::move(r.value().authority);
    ref_hub = std::move(r.value().hub);
  }
  const int32_t rwr_node = 7;
  std::vector<float> ref_rwr;
  {
    auto kernel = CreateKernel(kKernel, TestDevice());
    RwrEngine rwr(kernel.get());
    ASSERT_EQ(rwr.Init(graph, RwrOptions{}).code(), StatusCode::kOk);
    RwrOptions opts;
    opts.restart = kRestart;
    opts.tolerance = kTolerance;
    opts.max_iterations = kMaxIterations;
    Result<RwrResult> r = rwr.Query(rwr_node, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ref_rwr = std::move(r.value().scores);
  }

  EngineOptions opts;
  opts.num_threads = 4;
  opts.batch_window_seconds = 0.001;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", graph).code(), StatusCode::kOk);

  constexpr int kClients = 8;
  constexpr int kRounds = 2;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        QueryParams params = BaseParams();
        QueryResponse pr = engine.Query("g", QueryKind::kPageRank, params);
        QueryResponse hits = engine.Query("g", QueryKind::kHits, params);
        params.node = rwr_node;
        QueryResponse rwr = engine.Query("g", QueryKind::kRwr, params);
        if (!pr.status.ok() || !hits.status.ok() || !rwr.status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Bitwise: the engine runs the identical FP schedule.
        if (pr.scores != ref_pagerank) mismatches.fetch_add(1);
        if (hits.authority != ref_authority) mismatches.fetch_add(1);
        if (hits.hub != ref_hub) mismatches.fetch_add(1);
        if (rwr.scores != ref_rwr) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  ServerStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kClients * kRounds * 3));
  // Three workloads on one graph = exactly three plans built, ever.
  EXPECT_EQ(stats.plan_misses, 3u);
  EXPECT_GT(stats.plan_hits + stats.dedup_hits + stats.rwr_batched_queries,
            0u);
}

TEST(ServeEngineTest, DedupAnswersIdenticalInFlightOnce) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.2;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // Park the only worker in an RWR batch window so the PageRank leader
  // stays queued while the identical submissions below attach to it.
  std::future<QueryResponse> parked = ParkWorker(&engine);

  constexpr int kDup = 4;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < kDup; ++i) {
    futures.push_back(engine.Submit("g", QueryKind::kPageRank, BaseParams()));
  }
  std::vector<QueryResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());
  EXPECT_EQ(parked.get().status.code(), StatusCode::kOk);

  int deduped = 0;
  for (const QueryResponse& r : responses) {
    ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
    if (r.deduped) ++deduped;
    EXPECT_EQ(r.scores, responses[0].scores);
  }
  EXPECT_EQ(deduped, kDup - 1);
  EXPECT_EQ(engine.stats().dedup_hits, static_cast<uint64_t>(kDup - 1));
}

TEST(ServeEngineTest, CoalescedBatchBitwiseMatchesSingleQueries) {
  CsrMatrix graph = TestGraph(152);

  auto kernel = CreateKernel(kKernel, TestDevice());
  RwrEngine serial(kernel.get());
  ASSERT_EQ(serial.Init(graph, RwrOptions{}).code(), StatusCode::kOk);
  RwrOptions serial_opts;
  serial_opts.restart = kRestart;
  serial_opts.tolerance = kTolerance;
  serial_opts.max_iterations = kMaxIterations;

  EngineOptions opts;
  opts.num_threads = 2;
  opts.batch_window_seconds = 0.05;  // Wide window: all queries coalesce.
  opts.max_batch = 8;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", graph).code(), StatusCode::kOk);

  constexpr int kQueries = 8;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < kQueries; ++i) {
    QueryParams params = BaseParams();
    params.node = i * 11 % graph.rows;
    futures.push_back(engine.Submit("g", QueryKind::kRwr, params));
  }
  for (int i = 0; i < kQueries; ++i) {
    QueryResponse r = futures[i].get();
    ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
    EXPECT_GE(r.batch_size, 4) << "query " << i << " was not coalesced";
    Result<RwrResult> ref = serial.Query(i * 11 % graph.rows, serial_opts);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(r.scores, ref.value().scores) << "query " << i;
  }
  ServerStatsSnapshot stats = engine.stats();
  EXPECT_GE(stats.rwr_batched_queries, static_cast<uint64_t>(kQueries));
  EXPECT_GE(stats.coalesce_factor, 4.0);
}

TEST(ServeEngineTest, AdmissionControlShedsWhenQueueFull) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.max_pending = 3;
  opts.batch_window_seconds = 0.25;  // The parked worker sleeps this long.
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // One pending slot goes to the parked RWR query; nothing can complete
  // until its batch window elapses, so the burst below fills the remaining
  // two slots and sheds the rest — deterministically.
  std::future<QueryResponse> parked = ParkWorker(&engine);

  constexpr int kBurst = 8;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < kBurst; ++i) {
    // Distinct damping values defeat dedup: each submission needs a slot.
    QueryParams params = BaseParams();
    params.damping = 0.5f + 0.01f * static_cast<float>(i);
    futures.push_back(engine.Submit("g", QueryKind::kPageRank, params));
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    QueryResponse r = f.get();
    if (r.status.ok()) ++ok;
    else if (r.status.code() == StatusCode::kUnavailable) ++shed;
  }
  EXPECT_EQ(parked.get().status.code(), StatusCode::kOk);
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, kBurst - 2);
  EXPECT_GE(engine.stats().shed_queue_full, static_cast<uint64_t>(shed));
}

TEST(ServeEngineTest, DeadlineExpiredInQueueIsShed) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.2;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // The parked worker cannot reach the PageRank request for ~200 ms; its
  // 50 ms deadline is guaranteed to have expired by then.
  std::future<QueryResponse> parked = ParkWorker(&engine);
  QueryParams hurried = BaseParams();
  hurried.deadline_seconds = 0.05;
  std::future<QueryResponse> expired =
      engine.Submit("g", QueryKind::kPageRank, hurried);

  QueryResponse r = expired.get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
      << r.status.ToString();
  EXPECT_EQ(parked.get().status.code(), StatusCode::kOk);
  EXPECT_GE(engine.stats().shed_deadline, 1u);
}

TEST(ServeEngineTest, InvalidRequestsGetTypedErrors) {
  EngineOptions opts;
  opts.num_threads = 1;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  EXPECT_EQ(engine.Query("nope", QueryKind::kPageRank).status.code(),
            StatusCode::kInvalidArgument);

  QueryParams bad_kernel = BaseParams();
  bad_kernel.kernel = "no-such-kernel";
  EXPECT_EQ(engine.Query("g", QueryKind::kPageRank, bad_kernel).status.code(),
            StatusCode::kInvalidArgument);

  QueryParams bad_device = BaseParams();
  bad_device.device = "h100";
  EXPECT_EQ(engine.Query("g", QueryKind::kPageRank, bad_device).status.code(),
            StatusCode::kInvalidArgument);

  QueryParams bad_node = BaseParams();
  bad_node.node = 1 << 30;
  EXPECT_EQ(engine.Query("g", QueryKind::kRwr, bad_node).status.code(),
            StatusCode::kInvalidArgument);

  engine.Shutdown();
  EXPECT_EQ(engine.Query("g", QueryKind::kPageRank).status.code(),
            StatusCode::kUnavailable);
}

TEST(ServeEngineTest, RejectsNonSquareGraph) {
  EngineOptions opts;
  opts.num_threads = 1;
  Engine engine(opts);
  CsrMatrix rect = GenerateRmatRect(100, 50, 400, RmatOptions{.seed = 9});
  EXPECT_EQ(engine.AddGraph("r", std::move(rect)).code(),
            StatusCode::kInvalidArgument);
}

// --- Per-query latency attribution (docs/OBSERVABILITY.md stage model). ---

void ExpectStagesTelescope(const obs::QueryStages& stages, double total) {
  double sum = 0.0;
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    EXPECT_GE(stages.seconds[i], 0.0) << obs::QueryStageName(i);
    sum += stages.seconds[i];
  }
  // The breakdown telescopes: stage durations are differences of one
  // monotone timestamp sequence, so they sum to the total latency exactly
  // up to floating-point rounding.
  EXPECT_NEAR(sum, total, 1e-9);
}

TEST(ServeEngineTest, StageBreakdownTelescopesToTotalLatency) {
  EngineOptions opts;
  opts.num_threads = 2;
  opts.batch_window_seconds = 0.001;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  QueryResponse r = engine.Query("g", QueryKind::kPageRank, BaseParams());
  ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
  EXPECT_GT(r.query_id, 0u);
  EXPECT_GT(r.latency_seconds, 0.0);
  ExpectStagesTelescope(r.stages, r.latency_seconds);
  // Non-coalesced requests bill their wait to queue, never coalesce.
  EXPECT_DOUBLE_EQ(r.stages[obs::QueryStage::kCoalesce], 0.0);
  // A cold query did real plan and execute work.
  EXPECT_GT(r.stages[obs::QueryStage::kPlan], 0.0);
  EXPECT_GT(r.stages[obs::QueryStage::kExecute], 0.0);

  // The journal remembers the same request under the same id.
  std::vector<obs::QueryRecord> records = engine.journal().Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query_id, r.query_id);
  EXPECT_EQ(records[0].kind, "pagerank");
  EXPECT_NEAR(records[0].total_seconds, r.latency_seconds, 1e-12);
  EXPECT_FALSE(records[0].deadline_missed);

  // Early rejections are journaled too, with their own ids.
  QueryResponse bad = engine.Query("nope", QueryKind::kPageRank);
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_GT(bad.query_id, r.query_id);
  records = engine.journal().Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].code, StatusCode::kInvalidArgument);
}

TEST(ServeEngineTest, CoalescedBatchAttributesPanelPlacement) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.2;
  opts.max_batch = 8;
  opts.spmm_block_cols = 4;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // The parked flush task sleeps out the window on the only worker, so all
  // six RWR queries below land in one bucket and flush as a single batch:
  // panels [0..3] at width 4 and a ragged tail [4..5] at width 2.
  constexpr int kQueries = 6;
  std::vector<std::future<QueryResponse>> futures;
  futures.push_back(ParkWorker(&engine));  // node 0.
  for (int i = 1; i < kQueries; ++i) {
    QueryParams params = BaseParams();
    params.node = i;
    futures.push_back(engine.Submit("g", QueryKind::kRwr, params));
  }
  for (int i = 0; i < kQueries; ++i) {
    QueryResponse r = futures[i].get();
    ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
    EXPECT_EQ(r.batch_size, kQueries) << "query " << i;
    ExpectStagesTelescope(r.stages, r.latency_seconds);
    // Coalesced requests bill their wait to coalesce, never queue.
    EXPECT_DOUBLE_EQ(r.stages[obs::QueryStage::kQueue], 0.0);
    EXPECT_GT(r.stages[obs::QueryStage::kCoalesce], 0.0);
    // Panel placement follows submission order.
    if (i < 4) {
      EXPECT_EQ(r.panel_width, 4) << "query " << i;
      EXPECT_EQ(r.panel_column, i);
      EXPECT_FALSE(r.ragged_tail);
    } else {
      EXPECT_EQ(r.panel_width, 2) << "query " << i;
      EXPECT_EQ(r.panel_column, i - 4);
      EXPECT_TRUE(r.ragged_tail);
    }
  }

  // The journal carries the same placement, linked to one shared flush span.
  std::vector<obs::QueryRecord> records = engine.journal().Records();
  ASSERT_EQ(records.size(), static_cast<size_t>(kQueries));
  uint64_t exec_span = records[0].exec_span_id;
  for (const obs::QueryRecord& rec : records) {
    EXPECT_TRUE(rec.coalesced);
    EXPECT_EQ(rec.batch_size, kQueries);
    EXPECT_EQ(rec.exec_span_id, exec_span);
  }
}

// Run under ThreadSanitizer in CI: concurrent submitters race against the
// worker's deadline shedding, and each miss must land exactly one
// flight-recorder dump with a well-formed stage breakdown.
TEST(ServeEngineTest, ConcurrentDeadlineMissesEachDumpExactlyOnce) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.2;
  ASSERT_TRUE(opts.flight_recorder);  // Dump-on-miss is the default.
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // Park the only worker past every deadline below.
  std::future<QueryResponse> parked = ParkWorker(&engine);

  constexpr int kMiss = 4;
  std::vector<std::future<QueryResponse>> futures(kMiss);
  std::vector<std::thread> clients;
  clients.reserve(kMiss);
  for (int i = 0; i < kMiss; ++i) {
    clients.emplace_back([&, i] {
      // Distinct damping defeats dedup: every miss is its own request.
      QueryParams params = BaseParams();
      params.damping = 0.5f + 0.01f * static_cast<float>(i);
      params.deadline_seconds = 0.05;
      futures[i] = engine.Submit("g", QueryKind::kPageRank, params);
    });
  }
  for (std::thread& c : clients) c.join();

  std::vector<uint64_t> ids;
  for (auto& f : futures) {
    QueryResponse r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    EXPECT_GE(r.latency_seconds, 0.05);
    ExpectStagesTelescope(r.stages, r.latency_seconds);
    // A request that died waiting spent its life in the queue stage.
    EXPECT_GT(r.stages[obs::QueryStage::kQueue], 0.0);
    ids.push_back(r.query_id);
  }
  EXPECT_EQ(parked.get().status.code(), StatusCode::kOk);

  // Exactly one dump per miss — no more (the parked query completed fine),
  // no fewer, and each carries a distinct id with a telescoping breakdown.
  EXPECT_EQ(engine.journal().dumped_total(), static_cast<uint64_t>(kMiss));
  std::vector<obs::QueryRecord> dumps = engine.journal().Dumps();
  ASSERT_EQ(dumps.size(), static_cast<size_t>(kMiss));
  std::vector<uint64_t> dump_ids;
  for (const obs::QueryRecord& d : dumps) {
    EXPECT_TRUE(d.deadline_missed);
    EXPECT_EQ(d.code, StatusCode::kDeadlineExceeded);
    ExpectStagesTelescope(d.stages, d.total_seconds);
    dump_ids.push_back(d.query_id);
  }
  std::sort(ids.begin(), ids.end());
  std::sort(dump_ids.begin(), dump_ids.end());
  EXPECT_EQ(ids, dump_ids);
  EXPECT_TRUE(std::unique(ids.begin(), ids.end()) == ids.end());
}

// --- Robustness: cancellation, convergence guards, brownout ladder. ---
// (docs/ROBUSTNESS.md; run under ThreadSanitizer in CI.)

// A deadline that expires while the solve is running must cancel it
// mid-iteration — typed kDeadlineExceeded with the partial iteration count —
// not run the full budget and report the miss afterwards.
TEST(ServeEngineTest, DeadlineCancelsMidSolve) {
  EngineOptions opts;
  opts.num_threads = 1;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // Warm the plan so the deadline query below spends its whole budget in
  // the iteration loop rather than in preprocessing.
  QueryParams warm = BaseParams();
  warm.max_iterations = 2;
  ASSERT_EQ(engine.Query("g", QueryKind::kPageRank, warm).status.code(),
            StatusCode::kOk);

  // tolerance 0 never converges; the budget alone would run for tens of
  // seconds. Only the deadline's CancelToken can end this solve early.
  QueryParams doomed = BaseParams();
  doomed.tolerance = 0.0f;
  doomed.max_iterations = 2'000'000;
  doomed.deadline_seconds = 0.1;
  QueryResponse r = engine.Query("g", QueryKind::kPageRank, doomed);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
      << r.status.ToString();
  EXPECT_TRUE(r.cancelled);
  EXPECT_GT(r.stats.iterations, 0);
  EXPECT_LT(r.stats.iterations, doomed.max_iterations);

  ServerStatsSnapshot stats = engine.stats();
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);  // It executed; it did not die queued.

  // The journal distinguishes the mid-solve abort from a queue shed and
  // keeps the partial iteration count.
  std::vector<obs::QueryRecord> records = engine.journal().Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[1].cancelled);
  EXPECT_TRUE(records[1].deadline_missed);
  EXPECT_EQ(records[1].code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(records[1].iterations, r.stats.iterations);
}

TEST(ServeEngineTest, StrictConvergenceReportsBudgetExhaustion) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.strict_convergence = true;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  QueryParams p = BaseParams();
  p.tolerance = 1e-30f;  // Unreachable in three iterations.
  p.max_iterations = 3;
  QueryResponse r = engine.Query("g", QueryKind::kPageRank, p);
  EXPECT_EQ(r.status.code(), StatusCode::kDidNotConverge)
      << r.status.ToString();
  EXPECT_EQ(r.stats.iterations, 3);
  EXPECT_GE(engine.stats().did_not_converge, 1u);

  // A loose tolerance still converges and reports OK under strict mode.
  QueryParams easy = BaseParams();
  QueryResponse ok = engine.Query("g", QueryKind::kPageRank, easy);
  EXPECT_EQ(ok.status.code(), StatusCode::kOk) << ok.status.ToString();
}

TEST(ServeEngineTest, BrownoutLevel3ShedsWithRetryAfterHint) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.brownout.force_level = 3;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  QueryResponse r = engine.Query("g", QueryKind::kPageRank, BaseParams());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted)
      << r.status.ToString();
  EXPECT_GT(r.retry_after_seconds, 0.0);

  ServerStatsSnapshot stats = engine.stats();
  EXPECT_GE(stats.shed_overload, 1u);
  EXPECT_EQ(stats.brownout_level, 3);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServeEngineTest, BrownoutLevel2RelaxesToleranceWithinCallerBound) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.0;  // Single-query RWR path.
  opts.brownout.force_level = 2;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // The caller approved relaxation up to 1e-3: brownout takes it.
  QueryParams consenting = BaseParams();
  consenting.node = 0;
  consenting.max_tolerance = 1e-3f;
  QueryResponse r = engine.Query("g", QueryKind::kRwr, consenting);
  ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
  EXPECT_EQ(r.brownout_level, 2);
  EXPECT_FLOAT_EQ(r.tolerance_used, 1e-3f);
  EXPECT_GE(engine.stats().brownout_tolerance_relaxed, 1u);

  // max_tolerance 0 (the default) forbids relaxation: the query runs at its
  // requested tolerance even under brownout.
  QueryParams strict = BaseParams();
  strict.node = 1;
  QueryResponse held = engine.Query("g", QueryKind::kRwr, strict);
  ASSERT_EQ(held.status.code(), StatusCode::kOk) << held.status.ToString();
  EXPECT_FLOAT_EQ(held.tolerance_used, kTolerance);
}

TEST(ServeEngineTest, BrownoutLevel1HalvesCoalescedPanelWidth) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.batch_window_seconds = 0.2;
  opts.max_batch = 8;
  opts.spmm_block_cols = 4;
  opts.brownout.force_level = 1;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // Six coalesced queries on a width-4 plan would normally sweep panels
  // [4, 2]; under brownout level 1 the batch runs at half width instead.
  constexpr int kQueries = 6;
  std::vector<std::future<QueryResponse>> futures;
  futures.push_back(ParkWorker(&engine));  // node 0.
  for (int i = 1; i < kQueries; ++i) {
    QueryParams params = BaseParams();
    params.node = i;
    futures.push_back(engine.Submit("g", QueryKind::kRwr, params));
  }
  for (int i = 0; i < kQueries; ++i) {
    QueryResponse r = futures[i].get();
    ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
    EXPECT_EQ(r.batch_size, kQueries);
    EXPECT_EQ(r.brownout_level, 1) << "query " << i;
    EXPECT_LE(r.panel_width, 2) << "query " << i;
  }
  EXPECT_GE(engine.stats().brownout_panel_drops, 1u);
}

// Robustness counters and journal stay consistent across worker counts —
// the same mixed load of clean completions and mid-solve cancellations is
// pushed through 1, 4, and 8 workers. Run under ThreadSanitizer in CI.
class RobustCountersTest : public testing::TestWithParam<int> {};

TEST_P(RobustCountersTest, CountersAndJournalConsistentUnderLoad) {
  const int workers = GetParam();
  EngineOptions opts;
  opts.num_threads = workers;
  Engine engine(opts);
  ASSERT_EQ(engine.AddGraph("g", TestGraph()).code(), StatusCode::kOk);

  // Warm the plan so every doomed query below dies inside the solve loop.
  QueryParams warm = BaseParams();
  warm.max_iterations = 2;
  ASSERT_EQ(engine.Query("g", QueryKind::kPageRank, warm).status.code(),
            StatusCode::kOk);

  constexpr int kClients = 4;
  std::vector<std::future<QueryResponse>> ok_futures(kClients);
  std::vector<std::future<QueryResponse>> doomed_futures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Distinct damping defeats dedup: every request is its own work item.
      QueryParams ok = BaseParams();
      ok.damping = 0.6f + 0.01f * static_cast<float>(i);
      ok_futures[i] = engine.Submit("g", QueryKind::kPageRank, ok);

      QueryParams doomed = BaseParams();
      doomed.damping = 0.7f + 0.01f * static_cast<float>(i);
      doomed.tolerance = 0.0f;
      doomed.max_iterations = 2'000'000;
      doomed.deadline_seconds = 0.05;
      doomed_futures[i] = engine.Submit("g", QueryKind::kPageRank, doomed);
    });
  }
  for (std::thread& c : clients) c.join();

  for (int i = 0; i < kClients; ++i) {
    QueryResponse r = ok_futures[i].get();
    EXPECT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
  }
  int cancelled_mid_solve = 0;
  for (int i = 0; i < kClients; ++i) {
    QueryResponse r = doomed_futures[i].get();
    // Depending on worker availability a doomed query either starts and is
    // cancelled mid-solve or expires while still queued — both must surface
    // as kDeadlineExceeded, distinguished by the cancelled flag.
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    if (r.cancelled) {
      ++cancelled_mid_solve;
      EXPECT_GT(r.stats.iterations, 0);
      EXPECT_LT(r.stats.iterations, 2'000'000);
    } else {
      EXPECT_EQ(r.stats.iterations, 0);
    }
  }

  ServerStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients) + 1);
  EXPECT_EQ(stats.cancelled, static_cast<uint64_t>(cancelled_mid_solve));
  EXPECT_EQ(stats.cancelled + stats.shed_deadline,
            static_cast<uint64_t>(kClients));

  // One journal record per request, with the cancelled flags matching the
  // counter exactly.
  std::vector<obs::QueryRecord> records = engine.journal().Records();
  ASSERT_EQ(records.size(), static_cast<size_t>(2 * kClients + 1));
  int journal_cancelled = 0;
  for (const obs::QueryRecord& rec : records) {
    if (rec.cancelled) ++journal_cancelled;
  }
  EXPECT_EQ(journal_cancelled, cancelled_mid_solve);
}

INSTANTIATE_TEST_SUITE_P(Workers, RobustCountersTest,
                         testing::Values(1, 4, 8));

// --- PlanCache unit tests (builder returns synthetic plans). ---

Plan FakePlan(uint64_t bytes) {
  Plan p;
  p.resident_bytes = bytes;
  return p;
}

PlanKey KeyFor(const std::string& kernel) {
  PlanKey k;
  k.fingerprint = 42;
  k.device = "c1060";
  k.kernel = kernel;
  k.workload = PlanWorkload::kRwr;
  return k;
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedToHoldByteBudget) {
  PlanCache cache(250);
  auto build100 = [] { return Result<Plan>(FakePlan(100)); };

  bool hit = true;
  ASSERT_TRUE(cache.GetOrBuild(KeyFor("a"), build100, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrBuild(KeyFor("b"), build100, &hit).ok());
  ASSERT_TRUE(cache.GetOrBuild(KeyFor("c"), build100, &hit).ok());

  PlanCacheStats stats = cache.stats();
  EXPECT_LE(stats.resident_bytes, 250u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);  // "a" was least recently used.

  // "b" is still resident; "a" must rebuild.
  ASSERT_TRUE(cache.GetOrBuild(KeyFor("b"), build100, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.GetOrBuild(KeyFor("a"), build100, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_LE(cache.stats().resident_bytes, 250u);
}

TEST(PlanCacheTest, OversizedPlanServesAlone) {
  PlanCache cache(100);
  bool hit = false;
  Result<std::shared_ptr<const Plan>> r = cache.GetOrBuild(
      KeyFor("big"), [] { return Result<Plan>(FakePlan(1000)); }, &hit);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->resident_bytes, 1000u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCacheTest, ConcurrentMissesBuildOnce) {
  PlanCache cache(1 << 20);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Plan>> plans(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<std::shared_ptr<const Plan>> r = cache.GetOrBuild(
          KeyFor("shared"), [&] {
            builds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return Result<Plan>(FakePlan(64));
          });
      ASSERT_TRUE(r.ok());
      plans[t] = r.value();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(plans[t], plans[0]);
}

TEST(PlanCacheTest, FailedBuildIsMemoizedThenInvalidated) {
  PlanCache cache(1 << 20);  // Default 0.25 s failure memo.
  int attempts = 0;
  auto failing = [&]() -> Result<Plan> {
    ++attempts;
    return Status::Internal("boom");
  };
  bool hit = true;
  EXPECT_EQ(cache.GetOrBuild(KeyFor("x"), failing, &hit).status().code(),
            StatusCode::kInternal);
  EXPECT_FALSE(hit);
  EXPECT_EQ(attempts, 1);
  // An immediate retry lands inside the memo window: same typed error,
  // without re-running the poisoned builder.
  EXPECT_EQ(cache.GetOrBuild(KeyFor("x"), failing).status().code(),
            StatusCode::kInternal);
  EXPECT_EQ(attempts, 1);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.failed_builds, 1u);
  EXPECT_GE(stats.failure_memo_hits, 1u);
  EXPECT_EQ(stats.entries, 0u);  // A failure is never cached as a plan.

  // Invalidate clears the memo — the engine's retry-with-backoff path does
  // this between attempts — so the next call really rebuilds.
  cache.Invalidate(KeyFor("x"));
  Result<std::shared_ptr<const Plan>> ok = cache.GetOrBuild(
      KeyFor("x"), [&]() -> Result<Plan> {
        ++attempts;
        return Result<Plan>(FakePlan(64));
      });
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCacheTest, ZeroMemoWindowRetriesEveryCall) {
  PlanCache cache(1 << 20, 0.0);  // Memoization disabled.
  int attempts = 0;
  auto failing = [&]() -> Result<Plan> {
    ++attempts;
    return Status::Internal("boom");
  };
  EXPECT_EQ(cache.GetOrBuild(KeyFor("x"), failing).status().code(),
            StatusCode::kInternal);
  EXPECT_EQ(cache.GetOrBuild(KeyFor("x"), failing).status().code(),
            StatusCode::kInternal);
  EXPECT_EQ(attempts, 2);  // No negative cache without a memo window.
  EXPECT_EQ(cache.stats().failure_memo_hits, 0u);
}

// Single-flight failure: concurrent misses share one build, and when that
// build fails every waiter gets the typed error exactly once — nobody hangs,
// nobody re-runs the builder while it is in flight.
TEST(PlanCacheTest, FailedBuildPropagatesToEveryWaiter) {
  PlanCache cache(1 << 20, 0.0);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<StatusCode> codes(kThreads, StatusCode::kOk);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<std::shared_ptr<const Plan>> r = cache.GetOrBuild(
          KeyFor("shared"), [&]() -> Result<Plan> {
            builds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            return Status::Internal("boom");
          });
      codes[t] = r.status().code();
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(codes[t], StatusCode::kInternal) << "thread " << t;
  }
  // At least one thread arrived while the first build was in flight and
  // waited on it instead of building; with no memo, stragglers that arrived
  // after the failure may legitimately rebuild.
  EXPECT_LT(builds.load(), kThreads);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServerStatsTest, SnapshotAndJson) {
  ServerStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.RecordCompletion(i * 1e-3, 1e-4, true);
  }
  stats.RecordShed(StatusCode::kUnavailable);
  stats.RecordShed(StatusCode::kDeadlineExceeded);
  stats.RecordShed(StatusCode::kResourceExhausted);
  stats.RecordCancelled();
  stats.RecordNumericalError();
  stats.RecordDidNotConverge();
  stats.RecordBrownoutPanelDrop();
  stats.RecordBrownoutToleranceRelaxed(3);
  stats.RecordPlanBuildRetry();
  stats.SetBrownoutLevel(2);
  stats.RecordDedupHit();
  stats.RecordRwrBatch(8);

  ServerStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.completed, 100u);
  EXPECT_EQ(snap.shed_queue_full, 1u);
  EXPECT_EQ(snap.shed_deadline, 1u);
  EXPECT_EQ(snap.shed_overload, 1u);
  EXPECT_EQ(snap.cancelled, 1u);
  EXPECT_EQ(snap.numerical_errors, 1u);
  EXPECT_EQ(snap.did_not_converge, 1u);
  EXPECT_EQ(snap.brownout_panel_drops, 1u);
  EXPECT_EQ(snap.brownout_tolerance_relaxed, 3u);
  EXPECT_EQ(snap.plan_build_retries, 1u);
  EXPECT_EQ(snap.brownout_level, 2);
  EXPECT_NE(snap.ToJson().find("\"robustness\""), std::string::npos);
  EXPECT_EQ(snap.rwr_batches, 1u);
  EXPECT_EQ(snap.rwr_batched_queries, 8u);
  EXPECT_NEAR(snap.latency_p50_ms, 50.0, 2.0);
  EXPECT_GE(snap.latency_p95_ms, snap.latency_p50_ms);
  EXPECT_GE(snap.latency_p99_ms, snap.latency_p95_ms);
  EXPECT_NEAR(snap.modeled_gpu_seconds, 100 * 1e-4, 1e-9);
  EXPECT_NE(snap.ToJson().find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(snap.ToJson().find("\"plan_cache\""), std::string::npos);
}

TEST(ServerStatsTest, StageHistogramsFeedSnapshotAndJson) {
  ServerStats stats;
  obs::QueryStages stages;
  stages[obs::QueryStage::kQueue] = 0.010;
  stages[obs::QueryStage::kExecute] = 0.100;
  for (int i = 0; i < 10; ++i) stats.RecordStages(stages);

  ServerStatsSnapshot snap = stats.Snapshot();
  const int queue = static_cast<int>(obs::QueryStage::kQueue);
  const int execute = static_cast<int>(obs::QueryStage::kExecute);
  const int coalesce = static_cast<int>(obs::QueryStage::kCoalesce);
  EXPECT_NEAR(snap.stage_mean_ms[queue], 10.0, 1e-6);
  EXPECT_NEAR(snap.stage_p95_ms[queue], 10.0, 1e-6);
  EXPECT_NEAR(snap.stage_mean_ms[execute], 100.0, 1e-6);
  EXPECT_NEAR(snap.stage_p99_ms[execute], 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(snap.stage_mean_ms[coalesce], 0.0);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"stages_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace tilespmv::serve
