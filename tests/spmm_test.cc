// Blocked SpMM subsystem tests: panel layout, degenerate and ragged widths,
// empty rows, modeled-cost monotonicity, block-width selection, and the
// blocked RWR path's bitwise equivalence to the scalar one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "gen/graph_models.h"
#include "gen/power_law.h"
#include "gen/structured.h"
#include "graph/rwr.h"
#include "kernels/spmv.h"
#include "par/pool.h"
#include "spmm/block_select.h"
#include "spmm/dense_block.h"
#include "spmm/spmm.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;
using spmm::DenseBlock;

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

std::vector<std::vector<float>> RandomColumns(int32_t rows, int cols,
                                              uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::vector<float>> columns(cols);
  for (auto& c : columns) {
    c.resize(static_cast<size_t>(rows));
    for (float& v : c) v = rng.NextFloat() - 0.5f;
  }
  return columns;
}

TEST(DenseBlockTest, RowMajorLayoutAndColumnRoundTrip) {
  std::vector<std::vector<float>> columns = RandomColumns(17, 3, 5);
  DenseBlock b = spmm::PackColumns(columns);
  EXPECT_EQ(b.rows, 17);
  EXPECT_EQ(b.cols, 3);
  // Row-major interleaved: row r of vector j at data[r*cols + j].
  EXPECT_EQ(b.data[5 * 3 + 2], columns[2][5]);
  std::vector<float> out;
  for (int j = 0; j < 3; ++j) {
    b.ExtractColumn(j, &out);
    EXPECT_EQ(out, columns[static_cast<size_t>(j)]);
  }
}

TEST(DenseBlockTest, BlockWidthHelpers) {
  for (int k : {1, 2, 4, 8, 16}) EXPECT_TRUE(spmm::IsValidBlockCols(k));
  for (int k : {0, 3, 5, 7, 9, 17, 32, -1}) {
    EXPECT_FALSE(spmm::IsValidBlockCols(k)) << k;
  }
  EXPECT_EQ(spmm::LargestBlockColsAtMost(1), 1);
  EXPECT_EQ(spmm::LargestBlockColsAtMost(3), 2);
  EXPECT_EQ(spmm::LargestBlockColsAtMost(7), 4);
  EXPECT_EQ(spmm::LargestBlockColsAtMost(16), 16);
  EXPECT_EQ(spmm::LargestBlockColsAtMost(1000), 16);
}

TEST(SpmmKernelTest, NamePairingIsABijection) {
  for (const std::string& name : spmm::AllSpMMKernelNames()) {
    std::string spmv = spmm::SpmvKernelNameForSpmm(name);
    ASSERT_FALSE(spmv.empty()) << name;
    EXPECT_EQ(spmm::SpmmKernelNameForSpmv(spmv), name);
    EXPECT_NE(CreateKernel(spmv, DeviceSpec{}), nullptr);
    EXPECT_NE(spmm::CreateSpMMKernel(name, DeviceSpec{}), nullptr);
  }
  EXPECT_EQ(spmm::CreateSpMMKernel("nope", DeviceSpec{}), nullptr);
  EXPECT_EQ(spmm::SpmmKernelNameForSpmv("coo"), "");
}

TEST(SpmmKernelTest, RejectsInvalidBlockCols) {
  CsrMatrix a = GenerateBanded(64, 2, 3);
  for (int bad : {0, 3, 32, -4}) {
    auto k = spmm::CreateSpMMKernel("spmm-cpu-csr", DeviceSpec{});
    EXPECT_FALSE(k->Setup(a, bad).ok()) << bad;
  }
}

/// k = 1 panels must degenerate to the paired SpMV kernel exactly.
TEST(SpmmKernelTest, WidthOneDegeneratesToSpmv) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(900, 7200, RmatOptions{.seed = 21});
  std::vector<std::vector<float>> columns = RandomColumns(a.cols, 1, 77);
  for (const std::string& name : spmm::AllSpMMKernelNames()) {
    auto blocked = spmm::CreateSpMMKernel(name, spec);
    auto scalar = CreateKernel(spmm::SpmvKernelNameForSpmm(name), spec);
    Status bs = blocked->Setup(a, 1);
    Status ss = scalar->Setup(a);
    ASSERT_EQ(bs.ok(), ss.ok()) << name;
    if (!bs.ok()) continue;  // e.g. ELL padding blow-up — both reject.
    DenseBlock x = spmm::PackColumns(columns);
    DenseBlock y;
    spmm::MultiplyOriginal(*blocked, x, &y);
    std::vector<float> want;
    MultiplyOriginal(*scalar, columns[0], &want);
    ASSERT_EQ(y.rows, static_cast<int32_t>(want.size())) << name;
    std::vector<float> got;
    y.ExtractColumn(0, &got);
    // Tolerance-class pairings (spmm-cpu-csr-simd at a vector tier): the
    // paired SpMV reduces rows through a SIMD tree while the panel keeps
    // scalar order, so they agree within the docs/SIMD.md bound, not
    // bitwise.
    const bool bitwise =
        blocked->determinism() == DeterminismClass::kBitwise;
    double max_abs = 1.0;
    for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
    for (size_t i = 0; i < want.size(); ++i) {
      if (bitwise) {
        ASSERT_EQ(FloatBits(got[i]), FloatBits(want[i]))
            << name << " row " << i;
      } else {
        ASSERT_NEAR(got[i], want[i], 2e-4 * max_abs) << name << " row " << i;
      }
    }
  }
}

/// A panel narrower than the Setup width (the ragged final block of a
/// batch) must produce the same columns as the full-width run.
TEST(SpmmKernelTest, RaggedFinalBlockMatchesFullWidth) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(700, 5600, RmatOptions{.seed = 4});
  std::vector<std::vector<float>> columns = RandomColumns(a.cols, 8, 15);
  for (const std::string& name : spmm::AllSpMMKernelNames()) {
    auto blocked = spmm::CreateSpMMKernel(name, spec);
    if (!blocked->Setup(a, 8).ok()) continue;
    DenseBlock full = spmm::PackColumns(columns);
    DenseBlock y_full;
    spmm::MultiplyOriginal(*blocked, full, &y_full);
    for (int w : {1, 3, 5, 8}) {
      DenseBlock ragged = spmm::PackColumns(std::vector<std::vector<float>>(
          columns.begin(), columns.begin() + w));
      DenseBlock y;
      spmm::MultiplyOriginal(*blocked, ragged, &y);
      ASSERT_EQ(y.cols, w);
      std::vector<float> got, want;
      for (int j = 0; j < w; ++j) {
        y.ExtractColumn(j, &got);
        y_full.ExtractColumn(j, &want);
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(FloatBits(got[i]), FloatBits(want[i]))
              << name << " width " << w << " col " << j << " row " << i;
        }
      }
    }
  }
}

TEST(SpmmKernelTest, EmptyRowsProduceZeroOutput) {
  // Rows 0 and 3 empty; column space also has untouched indices.
  std::vector<Triplet> t = {{1, 0, 2.0f}, {1, 3, -1.0f}, {2, 2, 4.0f},
                            {4, 1, 0.5f}};
  CsrMatrix a = CsrMatrix::FromTriplets(5, 4, std::move(t));
  std::vector<std::vector<float>> columns = RandomColumns(4, 4, 9);
  for (const std::string& name : spmm::AllSpMMKernelNames()) {
    auto blocked = spmm::CreateSpMMKernel(name, DeviceSpec{});
    if (!blocked->Setup(a, 4).ok()) continue;
    DenseBlock y;
    spmm::MultiplyOriginal(*blocked, spmm::PackColumns(columns), &y);
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(y.at(0, j), 0.0f) << name;
      EXPECT_EQ(y.at(3, j), 0.0f) << name;
    }
  }
}

/// The Fig.2-style modeled-cost axes: wider panels never cost more per
/// vector, arithmetic intensity rises with width, and width 1 matches the
/// paired single-vector walk.
TEST(SpmmKernelTest, ModeledCostMonotonicity) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(2000, 16000, RmatOptions{.seed = 31});
  for (const std::string& name : spmm::AllSpMMKernelNames()) {
    auto blocked = spmm::CreateSpMMKernel(name, spec);
    if (!blocked->Setup(a, 16).ok()) continue;
    EXPECT_DOUBLE_EQ(blocked->TimingForBlockCols(1).seconds,
                     blocked->spmv_timing().seconds)
        << name;
    double prev_per_vector = 0.0;
    double prev_ai = 0.0;
    for (int k : spmm::kBlockWidths) {
      KernelTiming t = blocked->TimingForBlockCols(k);
      EXPECT_GT(t.seconds, 0.0) << name;
      EXPECT_EQ(t.flops,
                blocked->spmv_timing().flops * static_cast<uint64_t>(k))
          << name;
      double per_vector = t.seconds / k;
      double ai = blocked->ArithmeticIntensity(k);
      if (k > 1) {
        EXPECT_LT(per_vector, prev_per_vector) << name << " k=" << k;
        EXPECT_GT(ai, prev_ai) << name << " k=" << k;
      }
      prev_per_vector = per_vector;
      prev_ai = ai;
    }
    EXPECT_EQ(blocked->timing().seconds,
              blocked->TimingForBlockCols(16).seconds)
        << name;
  }
}

TEST(BlockSelectTest, ParseBlockColsIsStrict) {
  int k = -1;
  for (const char* good : {"1", "2", "4", "8", "16"}) {
    EXPECT_TRUE(spmm::ParseBlockCols(good, &k)) << good;
  }
  EXPECT_EQ(k, 16);
  for (const char* bad :
       {"", "0", "3", "5", "32", "8x", " 8", "4.0", "-8", "eight"}) {
    int unchanged = 42;
    EXPECT_FALSE(spmm::ParseBlockCols(bad, &unchanged)) << bad;
    EXPECT_EQ(unchanged, 42) << bad;
  }
}

TEST(BlockSelectTest, BlockColsFromEnv) {
  ::unsetenv(spmm::kBlockColsEnvVar);
  Result<int> r = spmm::BlockColsFromEnv(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 8);

  ::setenv(spmm::kBlockColsEnvVar, "4", 1);
  r = spmm::BlockColsFromEnv(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4);

  // Set-but-invalid is an error, never a silent fallback.
  for (const char* bad : {"3", "abc", "8 "}) {
    ::setenv(spmm::kBlockColsEnvVar, bad, 1);
    EXPECT_FALSE(spmm::BlockColsFromEnv(8).ok()) << bad;
  }
  ::unsetenv(spmm::kBlockColsEnvVar);
}

TEST(BlockSelectTest, ChooseBlockColsPrefersWiderPanels) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(1200, 9600, RmatOptions{.seed = 13});
  auto kernel = spmm::CreateSpMMKernel("spmm-tile-composite", spec);
  ASSERT_TRUE(kernel->Setup(a, 16).ok());
  // Per-vector cost strictly falls with width, so the bound is binding.
  EXPECT_EQ(spmm::ChooseBlockCols(*kernel, 16), 16);
  EXPECT_EQ(spmm::ChooseBlockCols(*kernel, 8), 8);
  EXPECT_EQ(spmm::ChooseBlockCols(*kernel, 5), 4);
  EXPECT_EQ(spmm::ChooseBlockCols(*kernel, 1), 1);
}

TEST(BlockSelectTest, SelectSpmmPlanPicksAKernelAndWidth) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(1500, 12000, RmatOptions{.seed = 3});
  std::vector<spmm::SpmmChoice> choices =
      spmm::PredictSpmmChoices(a, spec, 8);
  ASSERT_FALSE(choices.empty());
  for (size_t i = 1; i < choices.size(); ++i) {
    EXPECT_LE(choices[i - 1].seconds_per_vector,
              choices[i].seconds_per_vector);
  }
  Result<spmm::SpmmChoice> best = spmm::SelectSpmmPlan(a, spec, 8);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value().kernel, choices.front().kernel);
  EXPECT_TRUE(spmm::IsValidBlockCols(best.value().block_cols));
  EXPECT_LE(best.value().block_cols, 8);
  EXPECT_GT(best.value().arithmetic_intensity, 0.0);
  // The GPU kernels amortize their stream; the modeled CPU baseline should
  // not win on a power-law graph.
  EXPECT_NE(best.value().kernel, "spmm-cpu-csr");
}

/// The serving dedup contract end-to-end: a blocked batch must return, for
/// every query, the bit-exact scores of its standalone scalar run — panel
/// position, ragged tails, and convergence staggering included.
TEST(RwrBlockedTest, BlockedBatchMatchesScalarQueriesBitwise) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(800, 6400, RmatOptions{.seed = 17});
  RwrOptions opts;
  opts.max_iterations = 40;
  opts.block_cols = 4;

  for (const std::string& name :
       {std::string("tile-composite"), std::string("cpu-csr"),
        std::string("hyb")}) {
    auto kernel = CreateKernel(name, spec);
    auto blocked =
        spmm::CreateSpMMKernel(spmm::SpmmKernelNameForSpmv(name), spec);
    RwrEngine engine(kernel.get(), blocked.get());
    ASSERT_TRUE(engine.Init(a, opts).ok()) << name;
    EXPECT_EQ(engine.block_cols(), 4);

    auto scalar_kernel = CreateKernel(name, spec);
    RwrEngine scalar(scalar_kernel.get());
    RwrOptions scalar_opts = opts;
    scalar_opts.block_cols = 0;
    ASSERT_TRUE(scalar.Init(a, scalar_opts).ok()) << name;

    // 6 queries -> one full panel of 4 plus a ragged panel of 2.
    std::vector<int32_t> nodes = {3, 700, 42, 42, 515, 0};
    RwrBatchExecution exec;
    Result<std::vector<RwrResult>> batch =
        engine.QueryBatch(nodes, opts, &exec);
    ASSERT_TRUE(batch.ok()) << name;
    EXPECT_TRUE(exec.blocked);
    EXPECT_EQ(exec.block_cols, 4);
    EXPECT_GT(exec.sweeps, 0);
    EXPECT_GT(exec.vectors, exec.sweeps);  // Panels carried >1 vector.

    for (size_t q = 0; q < nodes.size(); ++q) {
      Result<RwrResult> single = scalar.Query(nodes[q], opts);
      ASSERT_TRUE(single.ok());
      const RwrResult& got = batch.value()[q];
      EXPECT_EQ(got.stats.iterations, single.value().stats.iterations)
          << name << " query " << q;
      ASSERT_EQ(got.scores.size(), single.value().scores.size());
      for (size_t i = 0; i < got.scores.size(); ++i) {
        ASSERT_EQ(FloatBits(got.scores[i]),
                  FloatBits(single.value().scores[i]))
            << name << " query " << q << " row " << i;
      }
    }
  }
}

TEST(RwrBlockedTest, InitRejectsBadBlockColsAndMismatchedPairing) {
  DeviceSpec spec;
  CsrMatrix a = GenerateBanded(128, 2, 5);
  auto kernel = CreateKernel("tile-composite", spec);
  auto blocked = spmm::CreateSpMMKernel("spmm-tile-composite", spec);
  {
    RwrEngine engine(kernel.get(), blocked.get());
    RwrOptions opts;
    opts.block_cols = 3;  // Not a valid width.
    EXPECT_FALSE(engine.Init(a, opts).ok());
  }
  {
    auto wrong = spmm::CreateSpMMKernel("spmm-cpu-csr", spec);
    RwrEngine engine(kernel.get(), wrong.get());
    RwrOptions opts;
    opts.block_cols = 4;
    EXPECT_FALSE(engine.Init(a, opts).ok());
  }
}

/// Blocked batches must stay bitwise stable across pool sizes, like every
/// other parallel loop in the library.
TEST(RwrBlockedTest, BlockedBatchBitwiseAcrossThreadCounts) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(600, 4800, RmatOptions{.seed = 29});
  RwrOptions opts;
  opts.max_iterations = 30;
  opts.block_cols = 4;
  std::vector<int32_t> nodes = {1, 2, 3, 4, 5};

  std::vector<std::vector<float>> serial;
  for (int threads : {1, 2, 4, 8}) {
    par::ThreadPool::SetGlobalThreadCount(threads);
    auto kernel = CreateKernel("tile-composite", spec);
    auto blocked = spmm::CreateSpMMKernel("spmm-tile-composite", spec);
    RwrEngine engine(kernel.get(), blocked.get());
    ASSERT_TRUE(engine.Init(a, opts).ok());
    Result<std::vector<RwrResult>> r = engine.QueryBatch(nodes, opts);
    ASSERT_TRUE(r.ok());
    if (serial.empty()) {
      for (const RwrResult& res : r.value()) serial.push_back(res.scores);
      continue;
    }
    for (size_t q = 0; q < nodes.size(); ++q) {
      for (size_t i = 0; i < serial[q].size(); ++i) {
        ASSERT_EQ(FloatBits(r.value()[q].scores[i]), FloatBits(serial[q][i]))
            << threads << " threads, query " << q << " row " << i;
      }
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

}  // namespace
}  // namespace tilespmv
