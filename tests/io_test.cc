#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/binary_cache.h"
#include "io/edge_list.h"
#include "io/matrix_market.h"
#include "util/random.h"

namespace tilespmv {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(MatrixMarketTest, WriteReadRoundTrip) {
  Pcg32 rng(41);
  std::vector<Triplet> t;
  for (int i = 0; i < 500; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(70)),
                        static_cast<int32_t>(rng.NextBounded(90)),
                        rng.NextFloat() + 0.5f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(70, 90, std::move(t));
  std::string path = TempPath("roundtrip.mtx");
  ASSERT_TRUE(WriteMatrixMarket(m, path).ok());
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_TRUE(r.ok());
  const CsrMatrix& back = r.value();
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  ASSERT_EQ(back.nnz(), m.nnz());
  EXPECT_EQ(back.col_idx, m.col_idx);
  for (int64_t k = 0; k < m.nnz(); ++k)
    EXPECT_NEAR(back.values[k], m.values[k], 1e-5 * std::abs(m.values[k]));
}

TEST(MatrixMarketTest, PatternEntriesGetUnitValues) {
  std::string path = TempPath("pattern.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "% comment line\n"
        << "3 3 2\n"
        << "1 2\n"
        << "3 1\n";
  }
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 2);
  for (float v : r.value().values) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(MatrixMarketTest, SymmetricExpands) {
  std::string path = TempPath("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n"
        << "3 3 2\n"
        << "2 1 5.0\n"
        << "3 3 7.0\n";
  }
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 3);  // Off-diagonal mirrored, diagonal not.
}

TEST(MatrixMarketTest, MissingFileFails) {
  Result<CsrMatrix> r = ReadMatrixMarket("/nonexistent/file.mtx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(MatrixMarketTest, BadBannerFails) {
  std::string path = TempPath("bad.mtx");
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

TEST(MatrixMarketTest, OutOfRangeIndexFails) {
  std::string path = TempPath("oob.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 1\n"
        << "5 1 1.0\n";
  }
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixMarketTest, TruncatedFileFails) {
  std::string path = TempPath("trunc.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "3 3 5\n"
        << "1 1 1.0\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

// --- Corrupt-input corpus (tests/data/corrupt/, docs/ROBUSTNESS.md). ---
//
// Every loader must turn malformed bytes into a typed Status — never crash,
// hang, overflow, or allocate unboundedly. The corpus files are committed so
// the exact byte patterns that once mattered keep being exercised.

std::string CorpusPath(const std::string& name) {
  return std::string(TILESPMV_TEST_DATA_DIR) + "/corrupt/" + name;
}

struct CorpusCase {
  const char* file;
  StatusCode want;
};

TEST(CorruptCorpusTest, MatrixMarketFilesFailTyped) {
  const CorpusCase cases[] = {
      {"bad_header.mtx", StatusCode::kIoError},
      {"truncated_entries.mtx", StatusCode::kIoError},
      {"out_of_range.mtx", StatusCode::kInvalidArgument},
      {"negative_nnz.mtx", StatusCode::kInvalidArgument},
      {"huge_nnz.mtx", StatusCode::kInvalidArgument},
      {"nonfinite_value.mtx", StatusCode::kInvalidArgument},
  };
  for (const CorpusCase& c : cases) {
    Result<CsrMatrix> r = ReadMatrixMarket(CorpusPath(c.file));
    ASSERT_FALSE(r.ok()) << c.file;
    EXPECT_EQ(r.status().code(), c.want)
        << c.file << ": " << r.status().ToString();
    EXPECT_FALSE(r.status().message().empty()) << c.file;
  }
}

TEST(CorruptCorpusTest, BinaryFilesFailTyped) {
  const char* cases[] = {"bad_magic.bin", "huge_claim.bin", "truncated.bin",
                         "negative_dims.bin"};
  for (const char* file : cases) {
    Result<CsrMatrix> r = ReadBinaryMatrix(CorpusPath(file));
    ASSERT_FALSE(r.ok()) << file;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError)
        << file << ": " << r.status().ToString();
  }
}

TEST(CorruptCorpusTest, EdgeListFilesFailTyped) {
  const CorpusCase cases[] = {
      {"bad_edge.txt", StatusCode::kIoError},
      {"negative_id.txt", StatusCode::kInvalidArgument},
      {"overflow_id.txt", StatusCode::kInvalidArgument},
      {"nan_weight.txt", StatusCode::kInvalidArgument},
  };
  for (const CorpusCase& c : cases) {
    Result<CsrMatrix> r = ReadEdgeList(CorpusPath(c.file), EdgeListOptions{});
    ASSERT_FALSE(r.ok()) << c.file;
    EXPECT_EQ(r.status().code(), c.want)
        << c.file << ": " << r.status().ToString();
  }
}

// A node id of exactly INT32_MAX would make the node count overflow int32;
// compact_ids remaps it instead of refusing.
TEST(CorruptCorpusTest, OverflowIdAcceptedWithCompactIds) {
  EdgeListOptions options;
  options.compact_ids = true;
  Result<CsrMatrix> r =
      ReadEdgeList(CorpusPath("overflow_id.txt"), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows, 2);
}

// The binary reader must reject a header claiming ~10^12 elements without
// attempting the allocation: the claimed length is bounded by the actual
// file size first. (If this regressed, the test would OOM, not just fail.)
TEST(CorruptCorpusTest, HugeClaimDoesNotAllocate) {
  Result<CsrMatrix> r = ReadBinaryMatrix(CorpusPath("huge_claim.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tilespmv
