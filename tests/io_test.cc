#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/matrix_market.h"
#include "util/random.h"

namespace tilespmv {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(MatrixMarketTest, WriteReadRoundTrip) {
  Pcg32 rng(41);
  std::vector<Triplet> t;
  for (int i = 0; i < 500; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(70)),
                        static_cast<int32_t>(rng.NextBounded(90)),
                        rng.NextFloat() + 0.5f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(70, 90, std::move(t));
  std::string path = TempPath("roundtrip.mtx");
  ASSERT_TRUE(WriteMatrixMarket(m, path).ok());
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_TRUE(r.ok());
  const CsrMatrix& back = r.value();
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  ASSERT_EQ(back.nnz(), m.nnz());
  EXPECT_EQ(back.col_idx, m.col_idx);
  for (int64_t k = 0; k < m.nnz(); ++k)
    EXPECT_NEAR(back.values[k], m.values[k], 1e-5 * std::abs(m.values[k]));
}

TEST(MatrixMarketTest, PatternEntriesGetUnitValues) {
  std::string path = TempPath("pattern.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "% comment line\n"
        << "3 3 2\n"
        << "1 2\n"
        << "3 1\n";
  }
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 2);
  for (float v : r.value().values) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(MatrixMarketTest, SymmetricExpands) {
  std::string path = TempPath("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n"
        << "3 3 2\n"
        << "2 1 5.0\n"
        << "3 3 7.0\n";
  }
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 3);  // Off-diagonal mirrored, diagonal not.
}

TEST(MatrixMarketTest, MissingFileFails) {
  Result<CsrMatrix> r = ReadMatrixMarket("/nonexistent/file.mtx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(MatrixMarketTest, BadBannerFails) {
  std::string path = TempPath("bad.mtx");
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

TEST(MatrixMarketTest, OutOfRangeIndexFails) {
  std::string path = TempPath("oob.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 1\n"
        << "5 1 1.0\n";
  }
  Result<CsrMatrix> r = ReadMatrixMarket(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixMarketTest, TruncatedFileFails) {
  std::string path = TempPath("trunc.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "3 3 5\n"
        << "1 1 1.0\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

}  // namespace
}  // namespace tilespmv
