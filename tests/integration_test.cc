// End-to-end checks tying datasets, kernels, auto-tuning and the mining
// algorithms together: the paper's qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "gen/datasets.h"
#include "graph/pagerank.h"
#include "kernels/spmv.h"
#include "sparse/matrix_stats.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

// A small scale keeps the suite fast; shape assertions hold at larger scales
// too (the benches run those).
constexpr double kScale = 0.02;

TEST(IntegrationTest, TileCompositeBeatsHybOnEveryPowerLawDataset) {
  DeviceSpec spec;
  for (const DatasetSpec& ds : PowerLawDatasets()) {
    Result<CsrMatrix> a = MakeDataset(ds.name, kScale);
    ASSERT_TRUE(a.ok()) << ds.name;
    auto hyb = CreateKernel("hyb", spec);
    auto tile = CreateKernel("tile-composite", spec);
    ASSERT_TRUE(hyb->Setup(a.value()).ok()) << ds.name;
    ASSERT_TRUE(tile->Setup(a.value()).ok()) << ds.name;
    EXPECT_GT(tile->timing().gflops(), hyb->timing().gflops()) << ds.name;
  }
}

TEST(IntegrationTest, NoSingleKernelDominatesUnstructured) {
  // Appendix D: "there is no single kernel that outperforms all others" on
  // the unstructured set. Verify tile-composite is NOT the winner everywhere
  // yet stays competitive (top half) on each dataset it runs on.
  DeviceSpec spec;
  int tile_wins = 0, datasets = 0;
  for (const DatasetSpec& ds : UnstructuredDatasets()) {
    Result<CsrMatrix> a = MakeDataset(ds.name, ds.name == "dense" ? 0.1 : 0.1);
    ASSERT_TRUE(a.ok()) << ds.name;
    double best = 0, tile_perf = 0;
    for (const std::string& name : GpuKernelNames()) {
      auto k = CreateKernel(name, spec);
      if (!k->Setup(a.value()).ok()) continue;
      double g = k->timing().gflops();
      best = std::max(best, g);
      if (name == "tile-composite") tile_perf = g;
    }
    ++datasets;
    if (tile_perf >= best * 0.999) ++tile_wins;
    EXPECT_GT(tile_perf, 0.25 * best) << ds.name;
  }
  EXPECT_LT(tile_wins, datasets);
}

TEST(IntegrationTest, PageRankSpeedupShapeOnPowerLaw) {
  // Table 1's shape: tile-composite < tile-coo < hyb ~ coo << cpu runtimes.
  DeviceSpec spec;
  Result<CsrMatrix> a = MakeDataset("wikipedia", kScale);
  ASSERT_TRUE(a.ok());
  PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  auto run = [&](const char* name) {
    auto k = CreateKernel(name, spec);
    Result<IterativeResult> r = RunPageRank(a.value(), k.get(), opts);
    EXPECT_TRUE(r.ok()) << name;
    return r.value().gpu_seconds;
  };
  double cpu = run("cpu-csr");
  double coo = run("coo");
  double hyb = run("hyb");
  double tile_coo = run("tile-coo");
  double tile_comp = run("tile-composite");
  EXPECT_LT(tile_comp, tile_coo);
  EXPECT_LT(tile_coo, coo);
  // The paper has HYB ~10% ahead of COO; the model puts them at parity on
  // the transposed (in-degree-skewed) PageRank matrix, where most non-zeros
  // overflow HYB's ELL prefix into its COO part (see EXPERIMENTS.md).
  EXPECT_LT(hyb, 1.05 * coo);
  EXPECT_LT(coo, cpu);
  double speedup_vs_cpu = cpu / tile_comp;
  EXPECT_GT(speedup_vs_cpu, 5.0);
  EXPECT_LT(speedup_vs_cpu, 200.0);
}

TEST(IntegrationTest, AllDatasetsProduceConsistentKernelResults) {
  // Functional cross-check: every kernel that sets up returns the same y.
  DeviceSpec spec;
  std::vector<std::string> names = {"webbase", "youtube", "circuit", "lp"};
  for (const std::string& ds : names) {
    Result<CsrMatrix> a = MakeDataset(ds, 0.02);
    ASSERT_TRUE(a.ok()) << ds;
    Pcg32 rng(7);
    std::vector<float> x(a.value().cols);
    for (float& v : x) v = rng.NextFloat();
    std::vector<float> want;
    CsrMultiply(a.value(), x, &want);
    double max_abs = 1.0;
    for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
    for (const std::string& name : AllKernelNames()) {
      auto k = CreateKernel(name, spec);
      if (!k->Setup(a.value()).ok()) continue;  // Format not applicable.
      std::vector<float> got;
      MultiplyOriginal(*k, x, &got);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs)
            << ds << " " << name << " row " << i;
      }
    }
  }
}

TEST(IntegrationTest, DenseMatrixBandwidthExceedsPeakViaTextureCache) {
  // Appendix D: on the dense matrix, tile-composite's *algorithmic*
  // bandwidth beats the physical peak because x is served from cache.
  DeviceSpec spec;
  Result<CsrMatrix> a = MakeDataset("dense", 1.0);
  ASSERT_TRUE(a.ok());
  auto k = CreateKernel("tile-composite", spec);
  ASSERT_TRUE(k->Setup(a.value()).ok());
  EXPECT_GT(k->timing().gbps(), spec.mem_bandwidth_gbps);
  EXPECT_GT(k->timing().TexHitRate(), 0.95);
}

TEST(IntegrationTest, KernelTimingDeterministic) {
  DeviceSpec spec;
  Result<CsrMatrix> a = MakeDataset("youtube", kScale);
  ASSERT_TRUE(a.ok());
  auto k1 = CreateKernel("tile-composite", spec);
  auto k2 = CreateKernel("tile-composite", spec);
  ASSERT_TRUE(k1->Setup(a.value()).ok());
  ASSERT_TRUE(k2->Setup(a.value()).ok());
  EXPECT_DOUBLE_EQ(k1->timing().seconds, k2->timing().seconds);
  EXPECT_EQ(k1->timing().tex_misses, k2->timing().tex_misses);
}

}  // namespace
}  // namespace tilespmv
