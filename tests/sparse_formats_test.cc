#include <gtest/gtest.h>

#include "gen/power_law.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/dia.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"
#include "sparse/matrix_stats.h"
#include "sparse/pkt.h"
#include "util/random.h"

namespace tilespmv {
namespace {

CsrMatrix SmallMatrix() {
  // 4x5:
  // [1 0 2 0 0]
  // [0 0 0 0 0]
  // [3 4 0 0 5]
  // [0 0 0 6 0]
  return CsrMatrix::FromTriplets(4, 5,
                                 {{0, 0, 1}, {0, 2, 2}, {2, 0, 3},
                                  {2, 1, 4}, {2, 4, 5}, {3, 3, 6}});
}

CsrMatrix RandomMatrix(int32_t rows, int32_t cols, int64_t nnz,
                       uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> t;
  for (int64_t i = 0; i < nnz; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(rows)),
                        static_cast<int32_t>(rng.NextBounded(cols)),
                        rng.NextFloat() + 0.1f});
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(t));
}

std::vector<float> RandomVector(int32_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> x(n);
  for (float& v : x) v = rng.NextFloat();
  return x;
}

TEST(CsrTest, FromTripletsSortsAndSums) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{1, 1, 5}, {0, 0, 1}, {1, 1, 2}, {0, 1, 3}});
  EXPECT_EQ(m.nnz(), 3);  // (1,1) duplicates merged.
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.RowLength(0), 2);
  EXPECT_EQ(m.RowLength(1), 1);
  EXPECT_FLOAT_EQ(m.values[2], 7.0f);  // 5 + 2.
}

TEST(CsrTest, LengthsAndValidate) {
  CsrMatrix m = SmallMatrix();
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.RowLengths(), (std::vector<int64_t>{2, 0, 3, 1}));
  EXPECT_EQ(m.ColLengths(), (std::vector<int64_t>{2, 1, 1, 1, 1}));
}

TEST(CsrTest, ValidateCatchesCorruption) {
  CsrMatrix m = SmallMatrix();
  m.col_idx[0] = 99;
  EXPECT_FALSE(m.Validate().ok());
  m = SmallMatrix();
  m.row_ptr[2] = 100;
  EXPECT_FALSE(m.Validate().ok());
  m = SmallMatrix();
  m.row_ptr.pop_back();
  EXPECT_FALSE(m.Validate().ok());
}

TEST(CsrTest, MultiplyMatchesHandComputation) {
  CsrMatrix m = SmallMatrix();
  std::vector<float> y;
  CsrMultiply(m, {1, 2, 3, 4, 5}, &y);
  EXPECT_EQ(y, (std::vector<float>{7, 0, 36, 24}));
}

TEST(CooTest, RoundTripPreservesMatrix) {
  CsrMatrix m = RandomMatrix(50, 40, 300, 1);
  CooMatrix coo = CooFromCsr(m);
  EXPECT_TRUE(coo.Validate().ok());
  CsrMatrix back = CsrFromCoo(coo);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);
}

TEST(EllTest, ConversionPadsToMaxRow) {
  CsrMatrix m = SmallMatrix();
  Result<EllMatrix> r = EllFromCsr(m, 1 << 20);
  ASSERT_TRUE(r.ok());
  const EllMatrix& e = r.value();
  EXPECT_EQ(e.width, 3);
  EXPECT_EQ(e.PaddedEntries(), 12);
  EXPECT_EQ(e.nnz(), m.nnz());
  EXPECT_TRUE(e.Validate().ok());
}

TEST(EllTest, MultiplySemanticsPreserved) {
  CsrMatrix m = RandomMatrix(64, 64, 400, 2);
  Result<EllMatrix> r = EllFromCsr(m, 1 << 24);
  ASSERT_TRUE(r.ok());
  const EllMatrix& e = r.value();
  std::vector<float> x = RandomVector(64, 3);
  std::vector<float> want;
  CsrMultiply(m, x, &want);
  std::vector<float> got(64, 0.0f);
  for (int32_t j = 0; j < e.width; ++j) {
    for (int32_t row = 0; row < e.rows; ++row) {
      size_t slot = static_cast<size_t>(j) * e.rows + row;
      if (e.col_idx[slot] != EllMatrix::kEllPad)
        got[row] += e.values[slot] * x[e.col_idx[slot]];
    }
  }
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(got[i], want[i], 1e-4);
}

TEST(EllTest, PowerLawPaddingExplodes) {
  // One hub row of 10000 + 10000 short rows: padded size 10001 * 10000.
  std::vector<Triplet> t;
  for (int32_t c = 0; c < 10000; ++c) t.push_back({0, c, 1.0f});
  for (int32_t r = 1; r <= 10000; ++r) t.push_back({r, r % 100, 1.0f});
  CsrMatrix m = CsrMatrix::FromTriplets(10001, 10001, std::move(t));
  Result<EllMatrix> r = EllFromCsr(m, /*max_bytes=*/100 << 20);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EllTest, TruncatedOverflowsToTriplets) {
  CsrMatrix m = SmallMatrix();
  std::vector<Triplet> overflow;
  EllMatrix e = EllFromCsrTruncated(m, 1, &overflow);
  EXPECT_EQ(e.nnz() + static_cast<int64_t>(overflow.size()), m.nnz());
  EXPECT_EQ(overflow.size(), 3u);  // Rows 0 and 2 overflow 1 and 2 entries.
}

TEST(HybTest, WidthHeuristicOnUniformRows) {
  // All rows length 7 -> width 7 (every row qualifies at every k <= 7).
  std::vector<Triplet> t;
  for (int32_t r = 0; r < 300; ++r) {
    for (int32_t j = 0; j < 7; ++j) t.push_back({r, (r + j * 13) % 300, 1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(300, 300, std::move(t));
  EXPECT_EQ(HybEllWidth(m), 7);
  HybMatrix h = HybFromCsr(m);
  EXPECT_EQ(h.coo.nnz(), 0);
}

TEST(HybTest, SkewedRowsBoundTheEllWidth) {
  std::vector<Triplet> t;
  for (int32_t c = 0; c < 5000; ++c) t.push_back({0, c, 1.0f});
  for (int32_t r = 1; r < 3000; ++r) {
    t.push_back({r, r, 1.0f});
    if (r % 3 == 0) t.push_back({r, (r * 7) % 5000, 1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(3000, 5000, std::move(t));
  int32_t width = HybEllWidth(m);
  EXPECT_LE(width, 2);  // The hub row must not set the width.
  HybMatrix h = HybFromCsr(m);
  EXPECT_EQ(h.nnz(), m.nnz());
  EXPECT_GT(h.coo.nnz(), 4000);  // Hub row overflows to COO.
}

TEST(HybTest, SplitPreservesMultiply) {
  CsrMatrix m = GenerateRmat(512, 4000, RmatOptions{.seed = 5});
  HybMatrix h = HybFromCsr(m);
  EXPECT_EQ(h.nnz(), m.nnz());
  std::vector<float> x = RandomVector(512, 6);
  std::vector<float> want;
  CsrMultiply(m, x, &want);
  std::vector<float> got(512, 0.0f);
  const EllMatrix& e = h.ell;
  for (int32_t j = 0; j < e.width; ++j) {
    for (int32_t row = 0; row < e.rows; ++row) {
      size_t slot = static_cast<size_t>(j) * e.rows + row;
      if (e.col_idx[slot] != EllMatrix::kEllPad)
        got[row] += e.values[slot] * x[e.col_idx[slot]];
    }
  }
  for (int64_t k = 0; k < h.coo.nnz(); ++k)
    got[h.coo.row_idx[k]] += h.coo.values[k] * x[h.coo.col_idx[k]];
  for (int i = 0; i < 512; ++i) EXPECT_NEAR(got[i], want[i], 1e-3);
}

TEST(DiaTest, BandedMatrixConverts) {
  std::vector<Triplet> t;
  for (int32_t r = 0; r < 100; ++r) {
    t.push_back({r, r, 2.0f});
    if (r > 0) t.push_back({r, r - 1, -1.0f});
    if (r < 99) t.push_back({r, r + 1, -1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(100, 100, std::move(t));
  Result<DiaMatrix> r = DiaFromCsr(m, 16, 1 << 20);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().offsets, (std::vector<int32_t>{-1, 0, 1}));
  EXPECT_TRUE(r.value().Validate().ok());
}

TEST(DiaTest, RandomMatrixRejected) {
  CsrMatrix m = RandomMatrix(500, 500, 3000, 7);
  Result<DiaMatrix> r = DiaFromCsr(m, 64, 1 << 30);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupportedFormat);
}

TEST(DiaTest, MultiplySemanticsPreserved) {
  std::vector<Triplet> t;
  for (int32_t r = 0; r < 50; ++r) {
    t.push_back({r, r, 2.0f});
    if (r + 3 < 50) t.push_back({r, r + 3, 1.5f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(50, 50, std::move(t));
  Result<DiaMatrix> res = DiaFromCsr(m, 16, 1 << 20);
  ASSERT_TRUE(res.ok());
  const DiaMatrix& d = res.value();
  std::vector<float> x = RandomVector(50, 8);
  std::vector<float> want;
  CsrMultiply(m, x, &want);
  std::vector<float> got(50, 0.0f);
  for (size_t dd = 0; dd < d.offsets.size(); ++dd) {
    for (int32_t row = 0; row < d.rows; ++row) {
      int64_t c = row + d.offsets[dd];
      if (c >= 0 && c < d.cols)
        got[row] += d.values[dd * d.rows + row] * x[c];
    }
  }
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(got[i], want[i], 1e-4);
}

TEST(PktTest, StructuredMatrixPacketsCoverAllNnz) {
  // Block-diagonal: clusters fit shared memory easily.
  std::vector<Triplet> t;
  for (int32_t b = 0; b < 20; ++b) {
    for (int32_t i = 0; i < 50; ++i) {
      for (int32_t j = 0; j < 50; j += 5) {
        t.push_back({b * 50 + i, b * 50 + (i + j) % 50, 1.0f});
      }
    }
  }
  CsrMatrix m = CsrMatrix::FromTriplets(1000, 1000, std::move(t));
  Result<PktMatrix> r = PktFromCsr(m, 512);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), m.nnz());
  for (const Packet& p : r.value().packets) {
    EXPECT_LE(static_cast<int32_t>(p.x_columns.size()), 512);
  }
}

TEST(PktTest, HubRowOverflowsSharedMemory) {
  std::vector<Triplet> t;
  for (int32_t c = 0; c < 5000; ++c) t.push_back({0, c, 1.0f});
  CsrMatrix m = CsrMatrix::FromTriplets(10, 5000, std::move(t));
  Result<PktMatrix> r = PktFromCsr(m, 4096);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupportedFormat);
}

TEST(PktTest, ImbalancedPacketsRejected) {
  // A dense stripe then a long sparse tail: first packet huge vs tail ones.
  std::vector<Triplet> t;
  for (int32_t r = 0; r < 40; ++r) {
    for (int32_t c = 0; c < 100; ++c) t.push_back({r, c, 1.0f});
  }
  for (int32_t r = 40; r < 20000; ++r) t.push_back({r, 100 + r, 1.0f});
  CsrMatrix m = CsrMatrix::FromTriplets(20000, 21000, std::move(t));
  Result<PktMatrix> r = PktFromCsr(m, 128, /*imbalance_limit=*/2.0);
  EXPECT_FALSE(r.ok());
}

TEST(MatrixStatsTest, DetectsPowerLaw) {
  CsrMatrix rmat = GenerateRmat(4096, 40000, RmatOptions{.seed = 11});
  MatrixStats s = ComputeStats(rmat);
  EXPECT_TRUE(s.power_law);
  EXPECT_GT(s.col_dist.max, 50);

  CsrMatrix uniform = RandomMatrix(4096, 4096, 40000, 12);
  EXPECT_FALSE(ComputeStats(uniform).power_law);
}

}  // namespace
}  // namespace tilespmv
