#include <gtest/gtest.h>

#include "core/tiling.h"
#include "gen/power_law.h"
#include "sparse/permute.h"

namespace tilespmv {
namespace {

CsrMatrix SortedPowerLaw(int32_t n, int64_t nnz, uint64_t seed) {
  CsrMatrix a = GenerateRmat(n, nnz, RmatOptions{.seed = seed});
  return ApplyColumnPermutation(a, SortColumnsByLengthDesc(a));
}

TEST(HeuristicTest, StopsAtSingleElementColumn) {
  // Tile width 4: first tile's lead column 5, second 2, third 1 -> 2 tiles.
  std::vector<int64_t> lens = {5, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1, 0};
  EXPECT_EQ(HeuristicNumTiles(lens, 4), 2);
}

TEST(HeuristicTest, ZeroTilesWhenAllSingletons) {
  std::vector<int64_t> lens(100, 1);
  EXPECT_EQ(HeuristicNumTiles(lens, 10), 0);
}

TEST(HeuristicTest, AllTilesWhenDense) {
  std::vector<int64_t> lens(100, 7);
  EXPECT_EQ(HeuristicNumTiles(lens, 10), 10);
}

TEST(SliceTest, LocalizedColumnsShifted) {
  CsrMatrix a = CsrMatrix::FromTriplets(
      2, 10, {{0, 1, 1.0f}, {0, 4, 2.0f}, {1, 5, 3.0f}, {1, 9, 4.0f}});
  CsrMatrix s = SliceColumns(a, 4, 8, /*localize=*/true);
  EXPECT_EQ(s.cols, 4);
  EXPECT_EQ(s.nnz(), 2);
  EXPECT_EQ(s.col_idx, (std::vector<int32_t>{0, 1}));  // 4 -> 0, 5 -> 1.
  EXPECT_FLOAT_EQ(s.values[0], 2.0f);
}

TEST(SliceTest, UnlocalizedKeepsGlobalIndices) {
  CsrMatrix a = CsrMatrix::FromTriplets(1, 10, {{0, 7, 1.0f}});
  CsrMatrix s = SliceColumns(a, 5, 10, /*localize=*/false);
  EXPECT_EQ(s.cols, 10);
  EXPECT_EQ(s.col_idx[0], 7);
}

TEST(SliceTest, SlicesPartitionNnz) {
  CsrMatrix a = SortedPowerLaw(2000, 20000, 21);
  int64_t total = 0;
  for (int32_t c0 = 0; c0 < a.cols; c0 += 700) {
    total += SliceColumns(a, c0, std::min(a.cols, c0 + 700), true).nnz();
  }
  EXPECT_EQ(total, a.nnz());
}

TEST(BuildTilingTest, ConservesNnzAcrossTilesAndSparsePart) {
  CsrMatrix a = SortedPowerLaw(5000, 60000, 22);
  TilingOptions opts;
  opts.tile_width = 512;
  TiledMatrix t = BuildTiling(a, opts);
  EXPECT_EQ(t.nnz(), a.nnz());
  EXPECT_GE(static_cast<int>(t.dense_tiles.size()), 1);
  // Dense tiles hold the majority of non-zeros on a power-law matrix even
  // though they cover a minority of columns (Observation 2 / Amdahl).
  EXPECT_GT(t.dense_nnz(), t.sparse_part.nnz());
  EXPECT_LE(t.dense_col_end, a.cols);
}

TEST(BuildTilingTest, ForcedTileCountRespected) {
  CsrMatrix a = SortedPowerLaw(5000, 60000, 23);
  TilingOptions opts;
  opts.tile_width = 512;
  opts.num_tiles = 3;
  TiledMatrix t = BuildTiling(a, opts);
  EXPECT_EQ(t.dense_tiles.size(), 3u);
  EXPECT_EQ(t.dense_col_end, 3 * 512);
  opts.num_tiles = 0;
  t = BuildTiling(a, opts);
  EXPECT_TRUE(t.dense_tiles.empty());
  EXPECT_EQ(t.sparse_part.nnz(), a.nnz());
}

TEST(BuildTilingTest, ForcedCountClampedToMatrixWidth) {
  CsrMatrix a = SortedPowerLaw(100, 800, 24);
  TilingOptions opts;
  opts.tile_width = 64;
  opts.num_tiles = 1000;
  TiledMatrix t = BuildTiling(a, opts);
  EXPECT_LE(static_cast<int64_t>(t.dense_tiles.size()) * 64,
            a.cols + 63);
  EXPECT_EQ(t.sparse_part.nnz(), 0);
  EXPECT_EQ(t.nnz(), a.nnz());
}

TEST(BuildTilingTest, TileColumnRangesAreDisjointAndOrdered) {
  CsrMatrix a = SortedPowerLaw(3000, 30000, 25);
  TilingOptions opts;
  opts.tile_width = 256;
  TiledMatrix t = BuildTiling(a, opts);
  int32_t expected_begin = 0;
  for (const TileSlice& s : t.dense_tiles) {
    EXPECT_EQ(s.col_begin, expected_begin);
    EXPECT_EQ(s.local.cols, s.col_end - s.col_begin);
    expected_begin = s.col_end;
  }
}

}  // namespace
}  // namespace tilespmv
