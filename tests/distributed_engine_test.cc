#include <gtest/gtest.h>

#include <cmath>

#include "gen/power_law.h"
#include "graph/hits.h"
#include "multigpu/distributed_engine.h"
#include "sparse/convert.h"
#include "util/random.h"

namespace tilespmv {
namespace {

TEST(DistributedEngineTest, MultiplyMatchesReferenceAcrossNodeCounts) {
  CsrMatrix a = GenerateRmat(3000, 25000, RmatOptions{.seed = 171});
  ClusterSpec cluster;
  Pcg32 rng(172);
  std::vector<float> x(a.cols);
  for (float& v : x) v = rng.NextFloat();
  std::vector<float> want;
  CsrMultiply(a, x, &want);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));

  for (int p : {1, 3, 7}) {
    DistributedSpmv engine(cluster);
    ASSERT_TRUE(engine.Init(a, p, "tile-composite").ok()) << p;
    std::vector<float> got;
    engine.Multiply(x, &got);
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs) << p << " row " << i;
    }
  }
}

TEST(DistributedEngineTest, DistributedHitsMatchesSingleNode) {
  // The engine runs the HITS combined matrix unmodified — the paper's
  // "any kernel plugs in" claim, extended to the other mining algorithms.
  CsrMatrix a = GenerateRmat(2000, 16000, RmatOptions{.seed = 173});
  CsrMatrix m = BuildHitsMatrix(a);
  ClusterSpec cluster;
  DistributedSpmv engine(cluster);
  ASSERT_TRUE(engine.Init(m, 4, "hyb").ok());

  // One HITS iteration by hand through the distributed multiply.
  const int32_t n2 = m.rows;
  std::vector<float> v(n2, 1.0f / a.rows), y;
  engine.Multiply(v, &y);
  std::vector<float> want;
  CsrMultiply(m, v, &want);
  for (int32_t i = 0; i < n2; ++i) ASSERT_NEAR(y[i], want[i], 1e-5) << i;
}

TEST(DistributedEngineTest, ComputeShrinksWithNodes) {
  CsrMatrix a = GenerateRmat(40000, 500000, RmatOptions{.seed = 174});
  ClusterSpec cluster;
  DistributedSpmv e2(cluster), e8(cluster);
  ASSERT_TRUE(e2.Init(a, 2, "hyb").ok());
  ASSERT_TRUE(e8.Init(a, 8, "hyb").ok());
  EXPECT_LT(e8.compute_seconds(), e2.compute_seconds());
  EXPECT_GT(e8.comm_seconds(), e2.comm_seconds());
  EXPECT_LT(e8.balance().nnz_imbalance, 1.1);
}

TEST(DistributedEngineTest, MemoryGate) {
  CsrMatrix a = GenerateRmat(30000, 600000, RmatOptions{.seed = 175});
  ClusterSpec cluster;
  cluster.gpu.global_mem_bytes = 4 << 20;
  DistributedSpmv engine(cluster);
  Status one = engine.Init(a, 1, "coo");
  ASSERT_FALSE(one.ok());
  EXPECT_EQ(one.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(engine.Init(a, 6, "coo").ok());
}

TEST(DistributedEngineTest, BadArgs) {
  CsrMatrix a = GenerateRmat(500, 3000, RmatOptions{.seed = 176});
  ClusterSpec cluster;
  DistributedSpmv engine(cluster);
  EXPECT_FALSE(engine.Init(a, 0, "hyb").ok());
  EXPECT_FALSE(engine.Init(a, 2, "bogus").ok());
}

}  // namespace
}  // namespace tilespmv
