#include <gtest/gtest.h>

#include <cmath>

#include "gen/power_law.h"
#include "kernels/spmv_csr5.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(Csr5Test, TilesPartitionNnzInFixedChunks) {
  DeviceSpec spec;
  Csr5Kernel kernel(spec);
  CsrMatrix a = GenerateRmat(4000, 50000, RmatOptions{.seed = 161});
  ASSERT_TRUE(kernel.Setup(a).ok());
  const auto& tiles = kernel.tiles();
  ASSERT_FALSE(tiles.empty());
  constexpr int kTile = Csr5Kernel::kOmega * Csr5Kernel::kSigma;
  EXPECT_EQ(tiles.front().nnz_begin, 0);
  EXPECT_EQ(tiles.back().nnz_end, a.nnz());
  for (size_t i = 0; i < tiles.size(); ++i) {
    int64_t len = tiles[i].nnz_end - tiles[i].nnz_begin;
    if (i + 1 < tiles.size()) {
      EXPECT_EQ(len, kTile) << i;
      EXPECT_EQ(tiles[i].nnz_end, tiles[i + 1].nnz_begin) << i;
    } else {
      EXPECT_LE(len, kTile);
    }
    EXPECT_LE(tiles[i].row_begin, tiles[i].row_end) << i;
  }
}

TEST(Csr5Test, RowRangesConsistentWithRowPtr) {
  DeviceSpec spec;
  Csr5Kernel kernel(spec);
  CsrMatrix a = GenerateRmat(2000, 30000, RmatOptions{.seed = 162});
  ASSERT_TRUE(kernel.Setup(a).ok());
  for (const auto& t : kernel.tiles()) {
    if (t.nnz_end == t.nnz_begin) continue;
    // The first entry belongs to row_begin, the last to row_end.
    EXPECT_GE(t.nnz_begin, a.row_ptr[t.row_begin]);
    EXPECT_LT(t.nnz_begin, a.row_ptr[t.row_begin + 1]);
    EXPECT_GE(t.nnz_end, a.row_ptr[t.row_end]);
    EXPECT_LE(t.nnz_end, a.row_ptr[t.row_end + 1]);
  }
}

TEST(Csr5Test, HubRowsSpanTilesCorrectly) {
  std::vector<Triplet> t;
  Pcg32 rng(163);
  for (int32_t c = 0; c < 5000; ++c) t.push_back({3, c, 0.25f});
  for (int i = 0; i < 8000; ++i) {
    t.push_back({static_cast<int32_t>(rng.NextBounded(1000)),
                 static_cast<int32_t>(rng.NextBounded(5000)),
                 rng.NextFloat()});
  }
  CsrMatrix a = CsrMatrix::FromTriplets(1000, 5000, std::move(t));
  DeviceSpec spec;
  Csr5Kernel kernel(spec);
  ASSERT_TRUE(kernel.Setup(a).ok());
  std::vector<float> x(a.cols);
  for (float& v : x) v = rng.NextFloat();
  std::vector<float> want, got;
  CsrMultiply(a, x, &want);
  kernel.Multiply(x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs) << i;
  }
}

TEST(Csr5Test, BalancedLikeMergeUnlikeCsrVector) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(60000, 800000, RmatOptions{.seed = 164});
  auto csr5 = CreateKernel("csr5", spec);
  auto csr_vec = CreateKernel("csr-vector", spec);
  ASSERT_TRUE(csr5->Setup(a).ok());
  ASSERT_TRUE(csr_vec->Setup(a).ok());
  EXPECT_LT(csr5->timing().seconds, csr_vec->timing().seconds);
}

TEST(Csr5Test, EmptyMatrix) {
  DeviceSpec spec;
  Csr5Kernel kernel(spec);
  CsrMatrix a;
  a.rows = 8;
  a.cols = 8;
  a.row_ptr.assign(9, 0);
  ASSERT_TRUE(kernel.Setup(a).ok());
  EXPECT_TRUE(kernel.tiles().empty());
  std::vector<float> y;
  kernel.Multiply(std::vector<float>(8, 1.0f), &y);
  for (float v : y) EXPECT_FLOAT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace tilespmv
