#include <gtest/gtest.h>

#include <cmath>

#include "gen/power_law.h"
#include "gen/structured.h"
#include "kernels/spmv_merge_csr.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(MergeCsrTest, SegmentsPartitionTheMergePath) {
  DeviceSpec spec;
  MergeCsrKernel kernel(spec);
  CsrMatrix a = GenerateRmat(5000, 60000, RmatOptions{.seed = 81});
  ASSERT_TRUE(kernel.Setup(a).ok());
  const auto& segs = kernel.segments();
  ASSERT_FALSE(segs.empty());
  EXPECT_EQ(segs.front().row_begin, 0);
  EXPECT_EQ(segs.front().nnz_begin, 0);
  EXPECT_EQ(segs.back().row_end, a.rows);
  EXPECT_EQ(segs.back().nnz_end, a.nnz());
  for (size_t i = 1; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].row_begin, segs[i - 1].row_end);
    EXPECT_EQ(segs[i].nnz_begin, segs[i - 1].nnz_end);
  }
}

TEST(MergeCsrTest, SegmentsAreBalancedDespiteHubs) {
  // One hub row with half the non-zeros: per-segment merge items (rows +
  // nnz) must still be near-uniform — the whole point of merge CSR.
  std::vector<Triplet> t;
  for (int32_t c = 0; c < 50000; ++c) t.push_back({0, c, 1.0f});
  Pcg32 rng(82);
  for (int i = 0; i < 50000; ++i) {
    t.push_back({static_cast<int32_t>(1 + rng.NextBounded(49999)),
                 static_cast<int32_t>(rng.NextBounded(50000)), 1.0f});
  }
  CsrMatrix a = CsrMatrix::FromTriplets(50000, 50000, std::move(t));
  DeviceSpec spec;
  MergeCsrKernel kernel(spec);
  ASSERT_TRUE(kernel.Setup(a).ok());
  const auto& segs = kernel.segments();
  int64_t merge_len = static_cast<int64_t>(a.rows) + a.nnz();
  int64_t ceiling =
      (merge_len + static_cast<int64_t>(segs.size()) - 1) /
      static_cast<int64_t>(segs.size());
  auto items_of = [](const MergeCsrKernel::Segment& s) {
    return (s.row_end - s.row_begin) + (s.nnz_end - s.nnz_begin);
  };
  size_t last_nonempty = 0;
  for (size_t i = 0; i < segs.size(); ++i) {
    if (items_of(segs[i]) > 0) last_nonempty = i;
  }
  for (size_t i = 0; i < segs.size(); ++i) {
    // Every segment is capped at the even split; only the trailing partial
    // and empty segments run short. The hub row cannot inflate any segment.
    EXPECT_LE(items_of(segs[i]), ceiling) << i;
    if (i < last_nonempty) EXPECT_EQ(items_of(segs[i]), ceiling) << i;
  }
}

TEST(MergeCsrTest, CorrectWithBoundaryCarries) {
  // Hub rows force rows to span many segments; the carry logic must
  // reassemble them exactly.
  std::vector<Triplet> t;
  Pcg32 rng(83);
  for (int32_t c = 0; c < 20000; ++c) t.push_back({7, c, 0.5f});
  for (int i = 0; i < 30000; ++i) {
    t.push_back({static_cast<int32_t>(rng.NextBounded(3000)),
                 static_cast<int32_t>(rng.NextBounded(20000)),
                 rng.NextFloat()});
  }
  CsrMatrix a = CsrMatrix::FromTriplets(3000, 20000, std::move(t));
  DeviceSpec spec;
  MergeCsrKernel kernel(spec);
  ASSERT_TRUE(kernel.Setup(a).ok());
  std::vector<float> x(a.cols);
  for (float& v : x) v = rng.NextFloat();
  std::vector<float> want, got;
  CsrMultiply(a, x, &want);
  kernel.Multiply(x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs) << i;
  }
}

TEST(MergeCsrTest, EmptyAndTinyMatrices) {
  DeviceSpec spec;
  {
    MergeCsrKernel kernel(spec);
    CsrMatrix a;
    a.rows = 4;
    a.cols = 4;
    a.row_ptr.assign(5, 0);
    ASSERT_TRUE(kernel.Setup(a).ok());
    std::vector<float> y;
    kernel.Multiply({1, 2, 3, 4}, &y);
    EXPECT_EQ(y, (std::vector<float>{0, 0, 0, 0}));
  }
  {
    MergeCsrKernel kernel(spec);
    CsrMatrix a = CsrMatrix::FromTriplets(1, 1, {{0, 0, 3.0f}});
    ASSERT_TRUE(kernel.Setup(a).ok());
    std::vector<float> y;
    kernel.Multiply({2.0f}, &y);
    EXPECT_FLOAT_EQ(y[0], 6.0f);
  }
}

TEST(MergeCsrTest, ImmuneToSkewUnlikeCsrKernels) {
  // Figure-2-style comparison on a skewed matrix: merge CSR must beat the
  // CSR scalar/vector kernels decisively.
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(80000, 900000, RmatOptions{.seed = 84});
  auto time_of = [&](const char* name) {
    auto k = CreateKernel(name, spec);
    EXPECT_TRUE(k->Setup(a).ok());
    return k->timing().seconds;
  };
  double merge = time_of("merge-csr");
  EXPECT_LT(merge, time_of("csr"));
  EXPECT_LT(merge, time_of("csr-vector"));
}

}  // namespace
}  // namespace tilespmv
