#include <gtest/gtest.h>

#include "gen/graph_models.h"
#include "kernels/spmv.h"
#include "sparse/matrix_stats.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(BarabasiAlbertTest, PowerLawDegrees) {
  CsrMatrix m = GenerateBarabasiAlbert(30000, 5, 121);
  EXPECT_TRUE(m.Validate().ok());
  MatrixStats s = ComputeStats(m);
  EXPECT_TRUE(s.power_law);
  EXPECT_GT(s.row_dist.max, 100);  // Hubs emerge.
  // Mean degree ~ 2 * edges_per_node (undirected, minus merged duplicates).
  EXPECT_NEAR(s.row_dist.mean, 10.0, 2.0);
}

TEST(BarabasiAlbertTest, SymmetricAdjacency) {
  CsrMatrix m = GenerateBarabasiAlbert(2000, 3, 122);
  // Every edge present in both directions.
  for (int32_t r = 0; r < m.rows; ++r) {
    for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      int32_t c = m.col_idx[k];
      bool found = false;
      for (int64_t j = m.row_ptr[c]; j < m.row_ptr[c + 1]; ++j) {
        if (m.col_idx[j] == r) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << r << "->" << c;
    }
  }
}

TEST(ConfigurationModelTest, RespectsAlphaAndCap) {
  CsrMatrix m = GenerateConfigurationModel(50000, 2.1, 2000, 123);
  EXPECT_TRUE(m.Validate().ok());
  MatrixStats s = ComputeStats(m);
  EXPECT_TRUE(s.power_law);
  EXPECT_LE(s.row_dist.max, 2000);
  // MLE on the generated degrees lands near the requested exponent.
  double alpha = EstimatePowerLawAlpha(m.RowLengths(), 3);
  EXPECT_NEAR(alpha, 2.1, 0.45);
}

TEST(WattsStrogatzTest, NearUniformDegrees) {
  CsrMatrix m = GenerateWattsStrogatz(20000, 8, 0.1, 124);
  EXPECT_TRUE(m.Validate().ok());
  MatrixStats s = ComputeStats(m);
  EXPECT_FALSE(s.power_law);
  EXPECT_LT(s.row_dist.max, 30);  // No hubs.
  EXPECT_NEAR(s.row_dist.mean, 8.0, 1.0);
}

TEST(KroneckerTest, DeterministicAndSkewed) {
  CsrMatrix a = GenerateKronecker(12);
  CsrMatrix b = GenerateKronecker(12);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.rows, 4096);
  // Node 0 is connected to everyone; nnz = 3^levels.
  EXPECT_EQ(a.RowLength(0), 4096);
  EXPECT_EQ(a.nnz(), 531441);  // 3^12.
  EXPECT_TRUE(ComputeStats(a).power_law);
}

TEST(GraphModelsTest, TileCompositeWinsOnEveryPowerLawFamily) {
  // The paper's claim is about the distribution, not the generator: the
  // tile-composite advantage over HYB must hold for R-MAT (tested
  // elsewhere), preferential attachment, configuration model, and
  // Kronecker — and vanish or shrink on the small-world control.
  DeviceSpec spec;
  auto ratio = [&](const CsrMatrix& m) {
    auto hyb = CreateKernel("hyb", spec);
    auto tile = CreateKernel("tile-composite", spec);
    EXPECT_TRUE(hyb->Setup(m).ok());
    EXPECT_TRUE(tile->Setup(m).ok());
    return tile->timing().gflops() / hyb->timing().gflops();
  };
  // Preferential attachment has a thinner tail (alpha ~ 3) than R-MAT, so
  // its margin is smaller but must still be a clear win.
  EXPECT_GT(ratio(GenerateBarabasiAlbert(150000, 8, 125)), 1.2);
  EXPECT_GT(ratio(GenerateConfigurationModel(60000, 2.0, 5000, 126)), 1.3);
  EXPECT_GT(ratio(GenerateKronecker(13)), 1.3);
}

}  // namespace
}  // namespace tilespmv
