// Direct tests of the shared kernel-walk helpers (SimContext +
// SimulateCooLaunch / SimulateEllLaunch) — the layer every GPU kernel's
// timing rests on.
#include <gtest/gtest.h>

#include "gen/power_law.h"
#include "kernels/walks.h"
#include "sparse/hyb.h"

namespace tilespmv {
namespace {

using gpu::SimContext;
using gpusim::DeviceSpec;

TEST(SimContextTest, AllocRespectsDeviceCapacity) {
  DeviceSpec spec;
  spec.global_mem_bytes = 1 << 20;
  SimContext ctx(spec);
  EXPECT_TRUE(ctx.Alloc(512 << 10).ok());
  Result<gpu::DeviceArray> too_big = ctx.Alloc(768 << 10);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
}

TEST(SimContextTest, TexFetchChargesMissesOnly) {
  DeviceSpec spec;
  SimContext ctx(spec);
  gpusim::WarpWork warp;
  ctx.TexFetch(0, 5, &warp);  // Cold miss.
  uint64_t after_miss = warp.scattered_bytes;
  EXPECT_EQ(after_miss, static_cast<uint64_t>(spec.texture_cache_line_bytes));
  EXPECT_EQ(warp.issue_cycles,
            static_cast<uint64_t>(spec.tex_miss_stall_cycles));
  ctx.TexFetch(0, 5, &warp);  // Hit: nothing added.
  EXPECT_EQ(warp.scattered_bytes, after_miss);
}

TEST(SimContextTest, FlushResetsResidency) {
  DeviceSpec spec;
  SimContext ctx(spec);
  gpusim::WarpWork warp;
  ctx.TexFetch(0, 9, &warp);
  ctx.FlushTexture();
  uint64_t before = warp.scattered_bytes;
  ctx.TexFetch(0, 9, &warp);  // Misses again after flush.
  EXPECT_GT(warp.scattered_bytes, before);
}

TEST(CooWalkTest, EmptyMatrixCostsNothingButLaunches) {
  DeviceSpec spec;
  SimContext ctx(spec);
  CooMatrix m;
  m.rows = 10;
  m.cols = 10;
  ASSERT_TRUE(gpu::SimulateCooLaunch(m, 0, 0, false, &ctx).ok());
  KernelTiming t;
  t.flops = 1;
  ctx.Finalize(&t);
  EXPECT_EQ(t.global_bytes, 0u);
}

TEST(CooWalkTest, TrafficScalesWithNnz) {
  DeviceSpec spec;
  CsrMatrix small = GenerateRmat(2000, 20000, RmatOptions{.seed = 191});
  CsrMatrix large = GenerateRmat(2000, 80000, RmatOptions{.seed = 191});
  auto traffic = [&](const CsrMatrix& a) {
    SimContext ctx(spec);
    auto x = ctx.Alloc(a.cols * 4);
    auto y = ctx.Alloc(a.rows * 4);
    EXPECT_TRUE(gpu::SimulateCooLaunch(CooFromCsr(a), x.value().addr,
                                       y.value().addr, false, &ctx)
                    .ok());
    KernelTiming t;
    t.flops = 1;
    ctx.Finalize(&t);
    return t;
  };
  KernelTiming ts = traffic(small);
  KernelTiming tl = traffic(large);
  // 4x the nnz: at least 3x the array traffic (cache effects bend it).
  EXPECT_GT(tl.global_bytes, 3 * ts.global_bytes);
  EXPECT_GT(tl.seconds, ts.seconds);
}

TEST(CooWalkTest, AccumulationDoublesYTraffic) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(3000, 30000, RmatOptions{.seed = 192});
  CooMatrix coo = CooFromCsr(a);
  auto run = [&](bool accumulate) {
    SimContext ctx(spec);
    auto x = ctx.Alloc(a.cols * 4);
    auto y = ctx.Alloc(a.rows * 4);
    EXPECT_TRUE(gpu::SimulateCooLaunch(coo, x.value().addr, y.value().addr,
                                       accumulate, &ctx)
                    .ok());
    KernelTiming t;
    t.flops = 1;
    ctx.Finalize(&t);
    return t.global_bytes;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(EllWalkTest, PaddingCostsTrafficButNotFetches) {
  DeviceSpec spec;
  // Two ELL matrices, same real nnz, one padded 4x wider.
  CsrMatrix a = GenerateRmat(4000, 24000, RmatOptions{.seed = 193});
  std::vector<Triplet> overflow;
  EllMatrix tight = EllFromCsrTruncated(a, 6, &overflow);
  EllMatrix padded = EllFromCsrTruncated(a, 24, nullptr);
  auto run = [&](const EllMatrix& m) {
    SimContext ctx(spec);
    auto x = ctx.Alloc(a.cols * 4);
    auto y = ctx.Alloc(a.rows * 4);
    EXPECT_TRUE(
        gpu::SimulateEllLaunch(m, x.value().addr, y.value().addr, &ctx).ok());
    KernelTiming t;
    t.flops = 1;
    ctx.Finalize(&t);
    return t;
  };
  KernelTiming t_tight = run(tight);
  KernelTiming t_padded = run(padded);
  EXPECT_GT(t_padded.global_bytes, 2 * t_tight.global_bytes);
  // Fetch count equals real (non-pad) entries, not padded slots.
  EXPECT_EQ(t_padded.tex_hits + t_padded.tex_misses,
            static_cast<uint64_t>(padded.nnz()));
}

TEST(UsefulBytesTest, FormatAccountingMatchesDefinition) {
  CsrMatrix a = GenerateRmat(1000, 8000, RmatOptions{.seed = 194});
  CooMatrix coo = CooFromCsr(a);
  EXPECT_GE(gpu::CooUsefulBytes(coo),
            static_cast<uint64_t>(coo.nnz()) * 16);
  HybMatrix h = HybFromCsr(a);
  EXPECT_GE(gpu::EllUsefulBytes(h.ell),
            static_cast<uint64_t>(h.ell.PaddedEntries()) * 8);
}

}  // namespace
}  // namespace tilespmv
