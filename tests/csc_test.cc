#include <gtest/gtest.h>

#include <cmath>

#include "gen/power_law.h"
#include "sparse/csc.h"
#include "util/random.h"

namespace tilespmv {
namespace {

TEST(CscTest, RoundTripExact) {
  CsrMatrix a = GenerateRmat(800, 6000, RmatOptions{.seed = 111});
  CscMatrix c = CscFromCsr(a);
  EXPECT_TRUE(c.Validate().ok());
  CsrMatrix back = CsrFromCsc(c);
  EXPECT_EQ(back.row_ptr, a.row_ptr);
  EXPECT_EQ(back.col_idx, a.col_idx);
  EXPECT_EQ(back.values, a.values);
}

TEST(CscTest, ColumnLengthsMatchCsrColumnCounts) {
  CsrMatrix a = GenerateRmat(500, 4000, RmatOptions{.seed = 112});
  CscMatrix c = CscFromCsr(a);
  std::vector<int64_t> expect = a.ColLengths();
  for (int32_t col = 0; col < a.cols; ++col) {
    ASSERT_EQ(c.ColLength(col), expect[col]) << col;
  }
}

TEST(CscTest, MultiplyMatchesCsr) {
  CsrMatrix a = GenerateRmatRect(300, 700, 5000, RmatOptions{.seed = 113});
  CscMatrix c = CscFromCsr(a);
  Pcg32 rng(114);
  std::vector<float> x(a.cols);
  for (float& v : x) v = rng.NextFloat() - 0.5f;
  std::vector<float> want, got;
  CsrMultiply(a, x, &want);
  CscMultiply(c, x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs) << i;
  }
}

TEST(CscTest, ValidateCatchesCorruption) {
  CsrMatrix a = GenerateRmat(100, 600, RmatOptions{.seed = 115});
  CscMatrix c = CscFromCsr(a);
  c.row_idx[0] = 500;
  EXPECT_FALSE(c.Validate().ok());
  c = CscFromCsr(a);
  c.col_ptr[1] = c.col_ptr[2] + 1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CscTest, EmptyMatrix) {
  CsrMatrix a;
  a.rows = 3;
  a.cols = 5;
  a.row_ptr.assign(4, 0);
  CscMatrix c = CscFromCsr(a);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.nnz(), 0);
  std::vector<float> y;
  CscMultiply(c, {1, 2, 3, 4, 5}, &y);
  EXPECT_EQ(y, (std::vector<float>{0, 0, 0}));
}

}  // namespace
}  // namespace tilespmv
