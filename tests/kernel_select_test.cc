#include <gtest/gtest.h>

#include "core/kernel_select.h"
#include "kernels/spmv.h"
#include "gen/power_law.h"
#include "gen/structured.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(KernelSelectTest, PowerLawPrefersTileComposite) {
  DeviceSpec spec;
  PerfModel model(spec);
  CsrMatrix a = GenerateRmat(50000, 600000, RmatOptions{.seed = 41});
  EXPECT_EQ(SelectKernel(a, model), "tile-composite");
}

TEST(KernelSelectTest, EllCandidateSkippedWhenPaddingExplodes) {
  DeviceSpec spec;
  PerfModel model(spec);
  // One hub row makes ELL's padded storage exceed device memory.
  std::vector<Triplet> t;
  for (int32_t c = 0; c < 400000; ++c) t.push_back({0, c, 1.0f});
  for (int32_t r = 1; r < 2000000; ++r) t.push_back({r, r % 400000, 1.0f});
  CsrMatrix a = CsrMatrix::FromTriplets(2000000, 400000, std::move(t));
  std::vector<KernelPrediction> preds = PredictKernelChoices(a, model);
  for (const KernelPrediction& p : preds) EXPECT_NE(p.kernel, "ell");
}

TEST(KernelSelectTest, UniformShortRowsAdmitEll) {
  DeviceSpec spec;
  PerfModel model(spec);
  // Every row exactly 8 non-zeros with a cache-resident x: ELL's natural
  // habitat. ELL must at least be predicted competitive (within 2x of the
  // winner), whoever wins.
  std::vector<Triplet> t;
  Pcg32 rng(42);
  const int32_t n = 50000;
  for (int32_t r = 0; r < n; ++r) {
    for (int j = 0; j < 8; ++j) {
      t.push_back({r, static_cast<int32_t>(rng.NextBounded(16384)), 1.0f});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n, 16384, std::move(t));
  std::vector<KernelPrediction> preds = PredictKernelChoices(a, model);
  double best = preds.front().predicted_seconds;
  bool saw_ell = false;
  for (const KernelPrediction& p : preds) {
    if (p.kernel == "ell") {
      saw_ell = true;
      EXPECT_LT(p.predicted_seconds, 2.5 * best);
    }
  }
  EXPECT_TRUE(saw_ell);
}

TEST(KernelSelectTest, LongUniformRowsFavorRowMajorExecution) {
  DeviceSpec spec;
  PerfModel model(spec);
  // 256 rows of 20000: warp-per-row CSR-vector territory. The selector must
  // rank csr-vector well ahead of ELL (whose padding is harmless here but
  // whose thread-per-row walk serializes 20000 strides).
  CsrMatrix a = GenerateLp(256, 65536, 256 * 20000, 43);
  std::vector<KernelPrediction> preds = PredictKernelChoices(a, model);
  double csr_vec = 0, ell = 0;
  for (const KernelPrediction& p : preds) {
    if (p.kernel == "csr-vector") csr_vec = p.predicted_seconds;
    if (p.kernel == "ell") ell = p.predicted_seconds;
  }
  ASSERT_GT(csr_vec, 0);
  ASSERT_GT(ell, 0);
  EXPECT_LT(csr_vec, ell);
}

TEST(KernelSelectTest, PredictionsSortedAscending) {
  DeviceSpec spec;
  PerfModel model(spec);
  CsrMatrix a = GenerateRmat(20000, 200000, RmatOptions{.seed = 44});
  std::vector<KernelPrediction> preds = PredictKernelChoices(a, model);
  ASSERT_GE(preds.size(), 2u);
  for (size_t i = 1; i < preds.size(); ++i) {
    EXPECT_LE(preds[i - 1].predicted_seconds, preds[i].predicted_seconds);
  }
}

TEST(KernelSelectTest, SelectedNameIsCreatable) {
  DeviceSpec spec;
  PerfModel model(spec);
  CsrMatrix a = GenerateRmat(10000, 100000, RmatOptions{.seed = 45});
  std::string name = SelectKernel(a, model);
  EXPECT_NE(CreateKernel(name, spec), nullptr);
}

TEST(KernelSelectTest, EmptyMatrixHandled) {
  DeviceSpec spec;
  PerfModel model(spec);
  CsrMatrix a;
  a.rows = 10;
  a.cols = 10;
  a.row_ptr.assign(11, 0);
  EXPECT_EQ(SelectKernel(a, model), "tile-composite");
}

}  // namespace
}  // namespace tilespmv
