#include <gtest/gtest.h>

#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/memory_system.h"
#include "gpusim/texture_cache.h"

namespace tilespmv::gpusim {
namespace {

TEST(DeviceSpecTest, TeslaC1060Parameters) {
  DeviceSpec spec = DeviceSpec::TeslaC1060();
  EXPECT_EQ(spec.num_sms, 30);
  EXPECT_EQ(spec.MaxActiveWarps(), 960);
  EXPECT_EQ(spec.texture_cache_bytes, 256 << 10);
  EXPECT_DOUBLE_EQ(spec.PartitionBandwidthBytesPerSec(),
                   spec.BandwidthBytesPerSec() / 8);
}

TEST(TextureCacheTest, ColdMissThenHit) {
  TextureCache cache(1024, 32, 2);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(31));   // Same line.
  EXPECT_FALSE(cache.Access(32));  // Next line.
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(TextureCacheTest, LruEviction) {
  // 2 sets x 2 ways x 32 B lines = 128 B. Lines 0, 2, 4 map to set 0.
  TextureCache cache(128, 32, 2);
  EXPECT_FALSE(cache.Access(0 * 32));
  EXPECT_FALSE(cache.Access(2 * 32));
  EXPECT_TRUE(cache.Access(0 * 32));   // Refresh line 0; line 2 is now LRU.
  EXPECT_FALSE(cache.Access(4 * 32));  // Evicts line 2.
  EXPECT_TRUE(cache.Access(0 * 32));
  EXPECT_FALSE(cache.Access(2 * 32));  // Line 2 was evicted.
}

TEST(TextureCacheTest, WorkingSetAtCapacityAllHitsAfterWarmup) {
  DeviceSpec spec;
  TextureCache cache(spec);
  // 64K floats = 256 KB = exactly the cache (the paper's tile width).
  const int n = 64 * 1024;
  for (int i = 0; i < n; ++i) cache.Access(4 * static_cast<uint64_t>(i));
  cache.ResetCounters();
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < n; ++i) cache.Access(4 * static_cast<uint64_t>(i));
  }
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.hits(), 3u * n);
}

TEST(TextureCacheTest, WorkingSetBeyondCapacityThrashes) {
  DeviceSpec spec;
  TextureCache cache(spec);
  const int n = 4 * 64 * 1024;  // 1 MB of floats vs 256 KB of cache.
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < n; ++i) cache.Access(4 * static_cast<uint64_t>(i));
  }
  // Sequential sweep over 4x the capacity: spatial hits within each 32 B
  // line remain (7 of 8 floats), but zero lines survive between passes —
  // every line is refetched on pass two.
  uint64_t lines_per_pass = static_cast<uint64_t>(n) * 4 / 32;
  EXPECT_EQ(cache.misses(), 2 * lines_per_pass);
}

TEST(TextureCacheTest, FlushInvalidates) {
  TextureCache cache(1024, 32, 2);
  cache.Access(0);
  cache.Flush();
  EXPECT_FALSE(cache.Access(0));
}

TEST(CoalesceTest, FullyCoalescedSingleTransaction) {
  DeviceSpec spec;
  uint64_t addrs[16];
  for (int i = 0; i < 16; ++i) addrs[i] = 4096 + 4 * i;  // One 64 B span.
  CoalesceResult r = CoalesceHalfWarp(addrs, 16, 4, spec);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes, 64u);  // Shrunk from 128 to the touched 64 B.
}

TEST(CoalesceTest, ScatteredLanesOneTransactionEach) {
  DeviceSpec spec;
  uint64_t addrs[16];
  for (int i = 0; i < 16; ++i) addrs[i] = 4096 + 1024 * i;
  CoalesceResult r = CoalesceHalfWarp(addrs, 16, 4, spec);
  EXPECT_EQ(r.transactions, 16u);
  EXPECT_EQ(r.bytes, 16u * 32);  // Minimum 32 B transactions.
}

TEST(CoalesceTest, TwoSegments) {
  DeviceSpec spec;
  uint64_t addrs[16];
  for (int i = 0; i < 16; ++i) addrs[i] = 4 * i * 2;  // 0..120, spans 128 B.
  addrs[15] = 130;  // Push one lane into the next segment.
  CoalesceResult r = CoalesceHalfWarp(addrs, 16, 4, spec);
  EXPECT_EQ(r.transactions, 2u);
}

TEST(CoalesceTest, SequentialTrafficRoundsToSegments) {
  DeviceSpec spec;
  CoalesceResult r = SequentialTraffic(0, 4, spec);
  EXPECT_EQ(r.bytes, 128u);
  r = SequentialTraffic(0, 128, spec);
  EXPECT_EQ(r.bytes, 128u);
  r = SequentialTraffic(120, 16, spec);  // Straddles a boundary.
  EXPECT_EQ(r.transactions, 2u);
}

TEST(PartitionTest, StripesInterleave) {
  DeviceSpec spec;
  EXPECT_EQ(PartitionOf(0, spec), 0);
  EXPECT_EQ(PartitionOf(255, spec), 0);
  EXPECT_EQ(PartitionOf(256, spec), 1);
  EXPECT_EQ(PartitionOf(256 * 8, spec), 0);  // Wraps after 8 partitions.
}

TEST(AllocatorTest, AlignsAndExhausts) {
  DeviceSpec spec;
  spec.global_mem_bytes = 1024;
  DeviceAllocator alloc(spec);
  Result<uint64_t> a = alloc.Allocate(100);
  ASSERT_TRUE(a.ok());
  Result<uint64_t> b = alloc.Allocate(100);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value() % 256, 0u);
  Result<uint64_t> c = alloc.Allocate(1024);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(CostModelTest, EmptyLaunchIsJustOverhead) {
  DeviceSpec spec;
  CostModel model(spec);
  LaunchEstimate est = model.EstimateLaunch(KernelLaunch{});
  EXPECT_NEAR(est.seconds, spec.kernel_launch_overhead_us * 1e-6, 1e-12);
  EXPECT_EQ(est.waves, 0);
}

TEST(CostModelTest, WaveCountMatchesEquationOne) {
  DeviceSpec spec;
  CostModel model(spec);
  KernelLaunch launch;
  launch.warps.resize(2000);  // ceil(2000 / 960) = 3 iterations.
  EXPECT_EQ(model.EstimateLaunch(launch).waves, 3);
}

TEST(CostModelTest, ComputeBoundScalesWithCycles) {
  DeviceSpec spec;
  CostModel model(spec);
  KernelLaunch launch;
  WarpWork w;
  w.issue_cycles = 1000000;
  launch.warps.assign(30, w);  // One warp per SM.
  double t1 = model.EstimateLaunch(launch).seconds;
  for (auto& warp : launch.warps) warp.issue_cycles *= 2;
  double t2 = model.EstimateLaunch(launch).seconds;
  EXPECT_NEAR(t2 - spec.kernel_launch_overhead_us * 1e-6,
              2 * (t1 - spec.kernel_launch_overhead_us * 1e-6), 1e-9);
}

TEST(CostModelTest, MemoryBoundUniformTrafficUsesFullBandwidth) {
  DeviceSpec spec;
  CostModel model(spec);
  KernelLaunch launch;
  WarpWork w;
  w.global_bytes = 10 << 20;
  w.start_address = kNoAddress;  // Spread uniformly.
  launch.warps.assign(960, w);
  double bytes = 960.0 * (10 << 20);
  double expect = bytes / spec.BandwidthBytesPerSec();
  LaunchEstimate est = model.EstimateLaunch(launch);
  EXPECT_NEAR(est.memory_seconds, expect, expect * 0.01);
  EXPECT_NEAR(est.worst_camping_factor, 1.0, 0.01);
}

TEST(CostModelTest, PartitionCampingDetectedAndPenalized) {
  DeviceSpec spec;
  CostModel model(spec);
  // All warps stream from addresses 2048 B apart -> same partition.
  KernelLaunch camped;
  for (int i = 0; i < 960; ++i) {
    WarpWork w;
    w.global_bytes = 1 << 20;
    w.start_address = static_cast<uint64_t>(i) * 2048;
    camped.warps.push_back(w);
  }
  // Same traffic, staggered by one partition stripe per warp.
  KernelLaunch staggered;
  for (int i = 0; i < 960; ++i) {
    WarpWork w;
    w.global_bytes = 1 << 20;
    w.start_address = static_cast<uint64_t>(i) * (2048 + 256);
    staggered.warps.push_back(w);
  }
  LaunchEstimate bad = model.EstimateLaunch(camped);
  LaunchEstimate good = model.EstimateLaunch(staggered);
  EXPECT_NEAR(bad.worst_camping_factor, 8.0, 0.01);
  EXPECT_NEAR(good.worst_camping_factor, 1.0, 0.01);
  EXPECT_GT(bad.seconds, 4 * good.seconds);
}

TEST(CostModelTest, MaxOfComputeAndMemoryPerWave) {
  DeviceSpec spec;
  CostModel model(spec);
  KernelLaunch launch;
  WarpWork w;
  w.issue_cycles = 1;
  w.global_bytes = 100 << 20;
  w.start_address = kNoAddress;
  launch.warps.assign(10, w);
  LaunchEstimate est = model.EstimateLaunch(launch);
  double overhead = spec.kernel_launch_overhead_us * 1e-6;
  EXPECT_NEAR(est.seconds - overhead, est.memory_seconds, 1e-12);
}

}  // namespace
}  // namespace tilespmv::gpusim
