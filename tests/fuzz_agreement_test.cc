// Randomized agreement testing: draw matrices from random families with
// random shapes and check that every kernel that accepts the matrix
// produces the same y (and sane timing) — a seeded, reproducible mini-fuzzer
// over the whole kernel zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "gen/graph_models.h"
#include "gen/power_law.h"
#include "gen/structured.h"
#include "graph/hits.h"
#include "graph/pagerank.h"
#include "graph/rwr.h"
#include "kernels/spmv.h"
#include "multigpu/cluster.h"
#include "multigpu/distributed_pagerank.h"
#include "par/pool.h"
#include "simd/caps.h"
#include "spmm/dense_block.h"
#include "spmm/spmm.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

CsrMatrix RandomFamilyMatrix(Pcg32* rng) {
  int family = rng->NextBounded(7);
  int32_t n = 64 + static_cast<int32_t>(rng->NextBounded(3000));
  switch (family) {
    case 0:
      return GenerateRmat(n, 8LL * n, RmatOptions{.seed = rng->NextU32()});
    case 1:
      return GenerateRmatRect(n, 64 + rng->NextBounded(5000), 6LL * n,
                              RmatOptions{.seed = rng->NextU32()});
    case 2:
      return GenerateBarabasiAlbert(std::max(n, 128), 4, rng->NextU32());
    case 3:
      return GenerateWattsStrogatz(std::max(n, 128), 6, 0.2,
                                   rng->NextU32());
    case 4:
      return GenerateBanded(n, 1 + rng->NextBounded(9), rng->NextU32());
    case 5:
      return GenerateCircuit(n, 4.0, rng->NextU32());
    default: {
      // Sparse uniform with occasional empty rows and duplicate merges.
      std::vector<Triplet> t;
      int64_t nnz = 1 + rng->NextBounded(static_cast<uint32_t>(6 * n));
      for (int64_t i = 0; i < nnz; ++i) {
        t.push_back(Triplet{static_cast<int32_t>(rng->NextBounded(n)),
                            static_cast<int32_t>(rng->NextBounded(n)),
                            rng->NextFloat() - 0.5f});
      }
      return CsrMatrix::FromTriplets(n, n, std::move(t));
    }
  }
}

class FuzzAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FuzzAgreement, AllAcceptingKernelsAgree) {
  Pcg32 rng(1000 + static_cast<uint64_t>(GetParam()));
  DeviceSpec spec;
  CsrMatrix a = RandomFamilyMatrix(&rng);
  ASSERT_TRUE(a.Validate().ok());

  std::vector<float> x(a.cols);
  for (float& v : x) v = rng.NextFloat() - 0.5f;
  std::vector<float> want;
  CsrMultiply(a, x, &want);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));

  int accepted = 0;
  for (const std::string& name : AllKernelNames()) {
    auto kernel = CreateKernel(name, spec);
    Status st = kernel->Setup(a);
    if (!st.ok()) continue;  // Format legitimately refuses some inputs.
    ++accepted;
    std::vector<float> got;
    MultiplyOriginal(*kernel, x, &got);
    ASSERT_EQ(got.size(), want.size()) << name;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 2e-4 * max_abs)
          << name << " seed " << GetParam() << " row " << i;
    }
    EXPECT_GT(kernel->timing().seconds, 0.0) << name;
    EXPECT_LT(kernel->timing().gflops(), 1000.0) << name;
  }
  // The CSR family + COO + HYB + merge + csr5 + tiles always accept.
  EXPECT_GE(accepted, 9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAgreement, ::testing::Range(0, 24));

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

/// The serving layer's dedup/coalescing contract (see spmv.h) requires that
/// results not depend on the pool size. Every registered kernel — setup AND
/// multiply — must produce the same bits at 1, 2, 4, and 8 threads, on both
/// a power-law and a structured matrix.
TEST(SerialParallelBitwise, AllKernelsMatchAcrossThreadCounts) {
  DeviceSpec spec;
  struct NamedMatrix {
    const char* name;
    CsrMatrix m;
  };
  std::vector<NamedMatrix> matrices;
  matrices.push_back(
      {"powerlaw", GenerateRmat(1500, 12000, RmatOptions{.seed = 7})});
  matrices.push_back({"banded", GenerateBanded(2000, 6, 11)});

  for (const NamedMatrix& nm : matrices) {
    ASSERT_TRUE(nm.m.Validate().ok()) << nm.name;
    Pcg32 rng(99);
    std::vector<float> x(nm.m.cols);
    for (float& v : x) v = rng.NextFloat() - 0.5f;

    for (const std::string& kernel_name : AllKernelNames()) {
      std::vector<float> serial;
      bool have_serial = false;
      for (int threads : {1, 2, 4, 8}) {
        par::ThreadPool::SetGlobalThreadCount(threads);
        auto kernel = CreateKernel(kernel_name, spec);
        // A fresh Setup per thread count also sweeps the parallel
        // preprocessing (counting sort, permutations, composite build).
        Status st = kernel->Setup(nm.m);
        if (!st.ok()) break;  // Rejection does not depend on threads.
        std::vector<float> got;
        MultiplyOriginal(*kernel, x, &got);
        if (!have_serial) {
          serial = std::move(got);
          have_serial = true;
          continue;
        }
        ASSERT_EQ(got.size(), serial.size()) << kernel_name;
        for (size_t i = 0; i < serial.size(); ++i) {
          ASSERT_EQ(FloatBits(got[i]), FloatBits(serial[i]))
              << kernel_name << " on " << nm.name << " at " << threads
              << " threads, row " << i << ": " << got[i]
              << " != " << serial[i];
        }
      }
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

/// The pipelined task-graph loops (graph/pipeline.h) claim bitwise
/// equivalence with the fork-join loops they replace: PageRank, HITS, and
/// single-query RWR on a tile-composite kernel must give the same bits —
/// same scores, same iteration count — for pipeline on and off, at 1, 2,
/// 4, and 8 threads. One serial fork-join run anchors the sweep.
TEST(SerialParallelBitwise, PipelinedGraphLoopsMatchForkJoin) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(1100, 8800, RmatOptions{.seed = 61});
  ASSERT_TRUE(a.Validate().ok());

  // PageRank.
  std::vector<float> pr_want;
  int pr_iters = 0;
  for (int threads : {1, 2, 4, 8}) {
    for (bool pipeline : {false, true}) {
      par::ThreadPool::SetGlobalThreadCount(threads);
      auto kernel = CreateKernel("tile-composite", spec);
      PageRankOptions opts;
      opts.pipeline = pipeline;
      Result<IterativeResult> r = RunPageRank(a, kernel.get(), opts);
      ASSERT_TRUE(r.ok());
      if (pr_want.empty()) {
        pr_want = r.value().result;
        pr_iters = r.value().iterations;
        continue;
      }
      ASSERT_EQ(r.value().iterations, pr_iters)
          << "pipeline=" << pipeline << " threads=" << threads;
      ASSERT_EQ(r.value().result.size(), pr_want.size());
      for (size_t i = 0; i < pr_want.size(); ++i) {
        ASSERT_EQ(FloatBits(r.value().result[i]), FloatBits(pr_want[i]))
            << "pagerank pipeline=" << pipeline << " threads=" << threads
            << " row " << i;
      }
    }
  }

  // HITS.
  std::vector<float> hits_auth, hits_hub;
  for (int threads : {1, 2, 4, 8}) {
    for (bool pipeline : {false, true}) {
      par::ThreadPool::SetGlobalThreadCount(threads);
      auto kernel = CreateKernel("tile-composite", spec);
      HitsOptions opts;
      opts.pipeline = pipeline;
      Result<HitsScores> r = RunHits(a, kernel.get(), opts);
      ASSERT_TRUE(r.ok());
      if (hits_auth.empty()) {
        hits_auth = r.value().authority;
        hits_hub = r.value().hub;
        continue;
      }
      for (size_t i = 0; i < hits_auth.size(); ++i) {
        ASSERT_EQ(FloatBits(r.value().authority[i]), FloatBits(hits_auth[i]))
            << "hits pipeline=" << pipeline << " threads=" << threads
            << " node " << i;
        ASSERT_EQ(FloatBits(r.value().hub[i]), FloatBits(hits_hub[i]))
            << "hits pipeline=" << pipeline << " threads=" << threads
            << " node " << i;
      }
    }
  }

  // Single-query RWR.
  std::vector<float> rwr_want;
  for (int threads : {1, 2, 4, 8}) {
    for (bool pipeline : {false, true}) {
      par::ThreadPool::SetGlobalThreadCount(threads);
      auto kernel = CreateKernel("tile-composite", spec);
      RwrEngine engine(kernel.get());
      RwrOptions opts;
      opts.pipeline = pipeline;
      ASSERT_TRUE(engine.Init(a, opts).ok());
      Result<RwrResult> r = engine.Query(3, opts);
      ASSERT_TRUE(r.ok());
      if (rwr_want.empty()) {
        rwr_want = r.value().scores;
        continue;
      }
      for (size_t i = 0; i < rwr_want.size(); ++i) {
        ASSERT_EQ(FloatBits(r.value().scores[i]), FloatBits(rwr_want[i]))
            << "rwr pipeline=" << pipeline << " threads=" << threads
            << " node " << i;
      }
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

/// Distributed PageRank's iteration loop now runs node compute and slice
/// scatter through a task graph; the per-node tasks write disjoint outputs,
/// so the functional result must stay bitwise identical across pool sizes.
TEST(SerialParallelBitwise, DistributedPageRankMatchesAcrossThreadCounts) {
  CsrMatrix a = GenerateRmat(900, 7200, RmatOptions{.seed = 71});
  ASSERT_TRUE(a.Validate().ok());
  DistributedPageRankOptions opts;
  ClusterSpec cluster;
  std::vector<float> want;
  for (int threads : {1, 2, 4, 8}) {
    par::ThreadPool::SetGlobalThreadCount(threads);
    Result<DistributedRunResult> r =
        RunDistributedPageRank(a, 3, opts, cluster);
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    if (want.empty()) {
      want = r.value().result;
      ASSERT_FALSE(want.empty());
      continue;
    }
    ASSERT_EQ(r.value().result.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(FloatBits(r.value().result[i]), FloatBits(want[i]))
          << "threads=" << threads << " row " << i;
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

/// The SpMM determinism contract (see spmm/spmm.h): every panel column of
/// every blocked kernel, at every supported width and every pool size, must
/// match k independent single-vector runs of the paired SpMV kernel bit for
/// bit. This is what lets the serving layer cache and dedup results across
/// the scalar and blocked paths interchangeably.
TEST(SerialParallelBitwise, SpmmMatchesIndependentSpmvSweeps) {
  gpusim::DeviceSpec spec;
  struct NamedMatrix {
    const char* name;
    CsrMatrix m;
  };
  std::vector<NamedMatrix> matrices;
  matrices.push_back(
      {"powerlaw", GenerateRmat(1200, 9600, RmatOptions{.seed = 19})});
  matrices.push_back({"banded", GenerateBanded(1500, 5, 23)});

  for (const NamedMatrix& nm : matrices) {
    Pcg32 rng(123);
    std::vector<std::vector<float>> columns(8);
    for (auto& c : columns) {
      c.resize(static_cast<size_t>(nm.m.cols));
      for (float& v : c) v = rng.NextFloat() - 0.5f;
    }

    for (const std::string& name : spmm::AllSpMMKernelNames()) {
      const std::string spmv_name = spmm::SpmvKernelNameForSpmm(name);
      ASSERT_FALSE(spmv_name.empty()) << name;
      // Single-vector reference columns, computed serially.
      par::ThreadPool::SetGlobalThreadCount(1);
      auto scalar = CreateKernel(spmv_name, spec);
      if (!scalar->Setup(nm.m).ok()) continue;  // Both formats reject.
      std::vector<std::vector<float>> want(columns.size());
      double max_abs = 1.0;
      for (size_t j = 0; j < columns.size(); ++j) {
        MultiplyOriginal(*scalar, columns[j], &want[j]);
        for (float w : want[j]) {
          max_abs = std::max(max_abs, std::fabs(double{w}));
        }
      }

      for (int k : {1, 2, 4, 8}) {
        for (int threads : {1, 2, 4, 8}) {
          par::ThreadPool::SetGlobalThreadCount(threads);
          auto blocked = spmm::CreateSpMMKernel(name, spec);
          ASSERT_TRUE(blocked->Setup(nm.m, k).ok()) << name;
          spmm::DenseBlock x =
              spmm::PackColumns(std::vector<std::vector<float>>(
                  columns.begin(), columns.begin() + k));
          spmm::DenseBlock y;
          spmm::MultiplyOriginal(*blocked, x, &y);
          ASSERT_EQ(y.rows, static_cast<int32_t>(want[0].size()));
          // Tolerance-class pairings (spmm-cpu-csr-simd at a vector tier)
          // reduce SpMV rows through a SIMD partial-sum tree, so their
          // panel columns agree with the pair within the documented bound
          // instead of bitwise (docs/SIMD.md).
          const bool bitwise =
              blocked->determinism() == DeterminismClass::kBitwise;
          std::vector<float> got;
          for (int j = 0; j < k; ++j) {
            y.ExtractColumn(j, &got);
            for (size_t i = 0; i < got.size(); ++i) {
              const float w = want[static_cast<size_t>(j)][i];
              if (bitwise) {
                ASSERT_EQ(FloatBits(got[i]), FloatBits(w))
                    << name << " on " << nm.name << " k=" << k
                    << " threads=" << threads << " col " << j << " row "
                    << i;
              } else {
                ASSERT_NEAR(got[i], w, 2e-4 * max_abs)
                    << name << " on " << nm.name << " k=" << k
                    << " threads=" << threads << " col " << j << " row "
                    << i;
              }
            }
          }
        }
      }
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

/// SIMD/scalar agreement sweep (docs/SIMD.md): every vector tier the host
/// can run must agree with the scalar tier of the same kernel at every pool
/// size — bitwise when the kernel's contract is bitwise (SELL slices, SpMM
/// panels), within the documented bound for the SIMD CSR row tree. Tiers
/// the host or binary lacks are skipped, so the sweep degrades to a
/// scalar-only self-check on a scalar-fallback build.
TEST(SimdScalarAgreement, SpmvTiersAgreeWithScalarTier) {
  DeviceSpec spec;
  struct NamedMatrix {
    const char* name;
    CsrMatrix m;
  };
  std::vector<NamedMatrix> matrices;
  matrices.push_back(
      {"powerlaw", GenerateRmat(1800, 14400, RmatOptions{.seed = 31})});
  matrices.push_back({"banded", GenerateBanded(1700, 5, 13)});

  for (const NamedMatrix& nm : matrices) {
    ASSERT_TRUE(nm.m.Validate().ok()) << nm.name;
    Pcg32 rng(7);
    std::vector<float> x(nm.m.cols);
    for (float& v : x) v = rng.NextFloat() - 0.5f;

    for (const char* name : {"cpu-csr-simd", "cpu-sell-simd"}) {
      ASSERT_TRUE(simd::SetTierOverride(simd::Tier::kScalar).ok());
      par::ThreadPool::SetGlobalThreadCount(1);
      auto ref_kernel = CreateKernel(name, spec);
      ASSERT_TRUE(ref_kernel->Setup(nm.m).ok()) << name;
      std::vector<float> ref;
      MultiplyOriginal(*ref_kernel, x, &ref);
      double max_abs = 1.0;
      for (float w : ref) max_abs = std::max(max_abs, std::fabs(double{w}));

      for (simd::Tier tier :
           {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
        if (!simd::DetectCaps().Supports(tier)) continue;
        ASSERT_TRUE(simd::SetTierOverride(tier).ok());
        for (int threads : {1, 2, 4, 8}) {
          par::ThreadPool::SetGlobalThreadCount(threads);
          auto kernel = CreateKernel(name, spec);
          ASSERT_TRUE(kernel->Setup(nm.m).ok()) << name;
          ASSERT_EQ(kernel->simd_tier(),
                    std::string_view(simd::TierName(tier)))
              << name;
          std::vector<float> got;
          MultiplyOriginal(*kernel, x, &got);
          ASSERT_EQ(got.size(), ref.size()) << name;
          const bool bitwise =
              kernel->determinism() == DeterminismClass::kBitwise;
          for (size_t i = 0; i < ref.size(); ++i) {
            if (bitwise) {
              ASSERT_EQ(FloatBits(got[i]), FloatBits(ref[i]))
                  << name << " tier " << simd::TierName(tier) << " on "
                  << nm.name << " threads=" << threads << " row " << i;
            } else {
              ASSERT_NEAR(got[i], ref[i], 2e-4 * max_abs)
                  << name << " tier " << simd::TierName(tier) << " on "
                  << nm.name << " threads=" << threads << " row " << i;
            }
          }
        }
      }
      simd::ClearTierOverride();
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

/// Same sweep for the blocked host kernels: each vector tier's panels versus
/// the scalar tier's, across panel widths and pool sizes.
TEST(SimdScalarAgreement, SpmmTiersAgreeWithScalarTier) {
  gpusim::DeviceSpec spec;
  CsrMatrix m = GenerateRmat(1200, 9600, RmatOptions{.seed = 47});
  ASSERT_TRUE(m.Validate().ok());
  Pcg32 rng(11);
  std::vector<std::vector<float>> columns(8);
  for (auto& c : columns) {
    c.resize(static_cast<size_t>(m.cols));
    for (float& v : c) v = rng.NextFloat() - 0.5f;
  }

  for (const char* name : {"spmm-cpu-csr", "spmm-cpu-csr-simd"}) {
    for (int k : {1, 4, 8}) {
      spmm::DenseBlock x = spmm::PackColumns(std::vector<std::vector<float>>(
          columns.begin(), columns.begin() + k));

      ASSERT_TRUE(simd::SetTierOverride(simd::Tier::kScalar).ok());
      par::ThreadPool::SetGlobalThreadCount(1);
      auto ref_kernel = spmm::CreateSpMMKernel(name, spec);
      ASSERT_TRUE(ref_kernel->Setup(m, k).ok()) << name;
      spmm::DenseBlock ref;
      spmm::MultiplyOriginal(*ref_kernel, x, &ref);
      double max_abs = 1.0;
      for (float w : ref.data) max_abs = std::max(max_abs, std::fabs(double{w}));

      for (simd::Tier tier :
           {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
        if (!simd::DetectCaps().Supports(tier)) continue;
        ASSERT_TRUE(simd::SetTierOverride(tier).ok());
        for (int threads : {1, 2, 4, 8}) {
          par::ThreadPool::SetGlobalThreadCount(threads);
          auto blocked = spmm::CreateSpMMKernel(name, spec);
          ASSERT_TRUE(blocked->Setup(m, k).ok()) << name;
          spmm::DenseBlock y;
          spmm::MultiplyOriginal(*blocked, x, &y);
          ASSERT_EQ(y.rows, ref.rows) << name;
          ASSERT_EQ(y.cols, ref.cols) << name;
          const bool bitwise =
              blocked->determinism() == DeterminismClass::kBitwise;
          for (size_t i = 0; i < ref.data.size(); ++i) {
            if (bitwise) {
              ASSERT_EQ(FloatBits(y.data[i]), FloatBits(ref.data[i]))
                  << name << " tier " << simd::TierName(tier) << " k=" << k
                  << " threads=" << threads << " flat index " << i;
            } else {
              ASSERT_NEAR(y.data[i], ref.data[i], 2e-4 * max_abs)
                  << name << " tier " << simd::TierName(tier) << " k=" << k
                  << " threads=" << threads << " flat index " << i;
            }
          }
        }
      }
      simd::ClearTierOverride();
    }
  }
  par::ThreadPool::SetGlobalThreadCount(0);
}

}  // namespace
}  // namespace tilespmv
