#include <gtest/gtest.h>

#include <fstream>

#include "gen/power_law.h"
#include "io/binary_cache.h"
#include "io/edge_list.h"

namespace tilespmv {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(EdgeListTest, ReadsPlainEdges) {
  std::string path = TempPath("plain.edges");
  {
    std::ofstream out(path);
    out << "# a comment\n"
        << "0 1\n"
        << "1 2 2.5\n"
        << "% another comment\n"
        << "2 0\n";
  }
  Result<CsrMatrix> r = ReadEdgeList(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CsrMatrix& m = r.value();
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.nnz(), 3);
  // Edge (1,2) carries its explicit weight.
  EXPECT_FLOAT_EQ(m.values[m.row_ptr[1]], 2.5f);
}

TEST(EdgeListTest, SymmetrizeAddsReverseEdges) {
  std::string path = TempPath("sym.edges");
  {
    std::ofstream out(path);
    out << "0 1\n2 2\n";
  }
  EdgeListOptions opts;
  opts.symmetrize = true;
  Result<CsrMatrix> r = ReadEdgeList(path, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 3);  // (0,1), (1,0), self-loop once.
}

TEST(EdgeListTest, CompactIdsRenumberDensely) {
  std::string path = TempPath("sparseids.edges");
  {
    std::ofstream out(path);
    out << "1000000 5000000\n5000000 9000000\n";
  }
  EdgeListOptions opts;
  opts.compact_ids = true;
  Result<CsrMatrix> r = ReadEdgeList(path, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows, 3);  // Three distinct nodes -> ids 0, 1, 2.
  EXPECT_EQ(r.value().nnz(), 2);
}

TEST(EdgeListTest, DuplicateEdgesMerge) {
  std::string path = TempPath("dups.edges");
  {
    std::ofstream out(path);
    out << "0 1 1.0\n0 1 2.0\n";
  }
  Result<CsrMatrix> r = ReadEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 1);
  EXPECT_FLOAT_EQ(r.value().values[0], 3.0f);
}

TEST(EdgeListTest, MalformedLineFails) {
  std::string path = TempPath("bad.edges");
  {
    std::ofstream out(path);
    out << "0 1\nnot numbers\n";
  }
  EXPECT_FALSE(ReadEdgeList(path).ok());
}

TEST(EdgeListTest, NegativeIdFails) {
  std::string path = TempPath("neg.edges");
  {
    std::ofstream out(path);
    out << "-3 1\n";
  }
  EXPECT_FALSE(ReadEdgeList(path).ok());
}

TEST(EdgeListTest, WriteReadRoundTrip) {
  CsrMatrix m = GenerateRmat(500, 3000, RmatOptions{.seed = 15});
  std::string path = TempPath("roundtrip.edges");
  ASSERT_TRUE(WriteEdgeList(m, path).ok());
  Result<CsrMatrix> r = ReadEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), m.nnz());
  EXPECT_EQ(r.value().col_idx, m.col_idx);
}

TEST(BinaryCacheTest, RoundTripExact) {
  CsrMatrix m = GenerateRmat(1000, 8000, RmatOptions{.seed = 16});
  std::string path = TempPath("matrix.bin");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  Result<CsrMatrix> r = ReadBinaryMatrix(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows, m.rows);
  EXPECT_EQ(r.value().row_ptr, m.row_ptr);
  EXPECT_EQ(r.value().col_idx, m.col_idx);
  EXPECT_EQ(r.value().values, m.values);  // Bit-exact.
}

TEST(BinaryCacheTest, RejectsWrongMagic) {
  std::string path = TempPath("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a matrix";
  }
  EXPECT_FALSE(ReadBinaryMatrix(path).ok());
}

TEST(BinaryCacheTest, RejectsTruncation) {
  CsrMatrix m = GenerateRmat(200, 1000, RmatOptions{.seed = 17});
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteBinaryMatrix(m, path).ok());
  // Chop the file.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = in.tellg();
  std::vector<char> buf(static_cast<size_t>(size) / 2);
  in.seekg(0);
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_FALSE(ReadBinaryMatrix(path).ok());
}

TEST(BinaryCacheTest, LoadOrBuildCachesSecondLoad) {
  std::string path = TempPath("cached.bin");
  std::remove(path.c_str());
  auto make = []() -> Result<CsrMatrix> {
    return GenerateRmat(300, 2000, RmatOptions{.seed = 18});
  };
  Result<CsrMatrix> first = LoadOrBuild(path, make);
  ASSERT_TRUE(first.ok());
  // Second call must come from the cache and be identical.
  Result<CsrMatrix> second = LoadOrBuild(path, make);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().col_idx, second.value().col_idx);
  std::ifstream probe(path);
  EXPECT_TRUE(probe.good());
}

}  // namespace
}  // namespace tilespmv
