#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/power_law.h"
#include "gen/structured.h"
#include "sparse/matrix_stats.h"

namespace tilespmv {
namespace {

TEST(RmatTest, DimensionsAndApproxNnz) {
  CsrMatrix m = GenerateRmat(10000, 80000, RmatOptions{.seed = 1});
  EXPECT_EQ(m.rows, 10000);
  EXPECT_EQ(m.cols, 10000);
  EXPECT_TRUE(m.Validate().ok());
  // Duplicates merge, so nnz lands a bit below target but not far.
  EXPECT_GT(m.nnz(), 80000 * 0.8);
  EXPECT_LE(m.nnz(), 80000);
}

TEST(RmatTest, ProducesPowerLawDegrees) {
  CsrMatrix m = GenerateRmat(1 << 14, 200000, RmatOptions{.seed = 2});
  MatrixStats s = ComputeStats(m);
  EXPECT_TRUE(s.power_law);
  EXPECT_GT(s.col_dist.max, 100);  // Hubs exist.
}

TEST(RmatTest, DeterministicForSeed) {
  CsrMatrix a = GenerateRmat(1000, 5000, RmatOptions{.seed = 7});
  CsrMatrix b = GenerateRmat(1000, 5000, RmatOptions{.seed = 7});
  EXPECT_EQ(a.col_idx, b.col_idx);
  CsrMatrix c = GenerateRmat(1000, 5000, RmatOptions{.seed = 8});
  EXPECT_NE(a.col_idx, c.col_idx);
}

TEST(RmatTest, NonPowerOfTwoSizeWorks) {
  CsrMatrix m = GenerateRmat(999, 3000, RmatOptions{.seed = 3});
  EXPECT_EQ(m.rows, 999);
  EXPECT_TRUE(m.Validate().ok());
  for (int32_t c : m.col_idx) EXPECT_LT(c, 999);
}

TEST(RmatTest, RectangularShape) {
  CsrMatrix m = GenerateRmatRect(100, 5000, 2000, RmatOptions{.seed = 4});
  EXPECT_EQ(m.rows, 100);
  EXPECT_EQ(m.cols, 5000);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(StructuredTest, DenseIsFullyDense) {
  CsrMatrix m = GenerateDense(64);
  EXPECT_EQ(m.nnz(), 64 * 64);
  EXPECT_TRUE(m.Validate().ok());
  for (int32_t r = 0; r < 64; ++r) EXPECT_EQ(m.RowLength(r), 64);
}

TEST(StructuredTest, CircuitHasDiagonalAndTargetDensity) {
  CsrMatrix m = GenerateCircuit(5000, 5.6, 42);
  EXPECT_TRUE(m.Validate().ok());
  double per_row = static_cast<double>(m.nnz()) / m.rows;
  EXPECT_NEAR(per_row, 5.6, 0.5);
  EXPECT_FALSE(ComputeStats(m).power_law);
}

TEST(StructuredTest, FemRowsNearUniform) {
  CsrMatrix m = GenerateFemStencil(3000, 51, 400, 42);
  EXPECT_TRUE(m.Validate().ok());
  MatrixStats s = ComputeStats(m);
  EXPECT_FALSE(s.power_law);
  EXPECT_LE(s.row_dist.max, 52);
  EXPECT_GE(s.row_dist.mean, 40);  // Duplicates shrink rows slightly.
}

TEST(StructuredTest, LpIsWide) {
  CsrMatrix m = GenerateLp(100, 20000, 50000, 42);
  EXPECT_EQ(m.rows, 100);
  EXPECT_EQ(m.cols, 20000);
  EXPECT_GT(m.RowLength(0), 100);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(StructuredTest, BandedStaysInBand) {
  CsrMatrix m = GenerateBanded(2000, 8, 42);
  EXPECT_TRUE(m.Validate().ok());
  for (int32_t r = 0; r < m.rows; ++r) {
    for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      EXPECT_LE(std::abs(m.col_idx[k] - r), 8);
    }
  }
}

TEST(DatasetsTest, RegistryKnowsAllPaperDatasets) {
  EXPECT_EQ(PowerLawDatasets().size(), 5u);
  EXPECT_EQ(UnstructuredDatasets().size(), 5u);
  EXPECT_EQ(WebGraphDatasets().size(), 4u);
  EXPECT_TRUE(FindDataset("livejournal").ok());
  EXPECT_TRUE(FindDataset("uk-union").ok());
  EXPECT_FALSE(FindDataset("nonexistent").ok());
}

TEST(DatasetsTest, PowerLawDatasetsComeOutPowerLaw) {
  // Small scale keeps the test quick; the distributional property is what
  // the generators must preserve at any scale.
  Result<CsrMatrix> m = MakeDataset("flickr", 0.01);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(ComputeStats(m.value()).power_law);
}

TEST(DatasetsTest, UnstructuredDatasetsAreNot) {
  for (const char* name : {"circuit", "fem_harbor", "protein"}) {
    Result<CsrMatrix> m = MakeDataset(name, 0.2);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_FALSE(ComputeStats(m.value()).power_law) << name;
  }
}

TEST(DatasetsTest, ScalePreservesMeanDegree) {
  Result<CsrMatrix> small = MakeDataset("youtube", 0.02);
  Result<CsrMatrix> large = MakeDataset("youtube", 0.08);
  ASSERT_TRUE(small.ok() && large.ok());
  double d1 = static_cast<double>(small.value().nnz()) / small.value().rows;
  double d2 = static_cast<double>(large.value().nnz()) / large.value().rows;
  EXPECT_NEAR(d1, d2, 1.0);
}

TEST(DatasetsTest, LpKeepsAspectRatio) {
  Result<CsrMatrix> m = MakeDataset("lp", 0.1);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.value().cols, 50 * m.value().rows);
}

}  // namespace
}  // namespace tilespmv
