#include <gtest/gtest.h>

#include <cmath>

#include "gen/power_law.h"
#include "graph/rwr.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

CsrMatrix TestGraph() { return GenerateRmat(2500, 20000, RmatOptions{.seed = 151}); }

TEST(RwrBatchTest, BatchMatchesIndividualQueries) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph();
  auto kernel = CreateKernel("tile-composite", spec);
  RwrEngine engine(kernel.get());
  ASSERT_TRUE(engine.Init(a, RwrOptions{}).ok());

  std::vector<int32_t> nodes = {3, 777, 2400};
  Result<std::vector<RwrResult>> batch = engine.QueryBatch(nodes);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), nodes.size());
  for (size_t q = 0; q < nodes.size(); ++q) {
    Result<RwrResult> single = engine.Query(nodes[q]);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(batch.value()[q].scores.size(), single.value().scores.size());
    for (size_t i = 0; i < single.value().scores.size(); ++i) {
      ASSERT_NEAR(batch.value()[q].scores[i], single.value().scores[i],
                  1e-6)
          << "query " << q << " entry " << i;
    }
    EXPECT_EQ(batch.value()[q].stats.iterations,
              single.value().stats.iterations);
  }
}

TEST(RwrBatchTest, AmortizationMakesBatchCheaperPerQuery) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph();
  auto kernel = CreateKernel("hyb", spec);
  RwrEngine engine(kernel.get());
  ASSERT_TRUE(engine.Init(a, RwrOptions{}).ok());
  double single_iter = engine.BatchIterationSeconds(1);
  double batch8_iter = engine.BatchIterationSeconds(8);
  // The batch costs more than one query but far less than eight.
  EXPECT_GT(batch8_iter, single_iter);
  EXPECT_LT(batch8_iter, 6.0 * single_iter);
  // Per-query billing reflects it.
  Result<std::vector<RwrResult>> batch =
      engine.QueryBatch({1, 2, 3, 4, 5, 6, 7, 8});
  Result<RwrResult> one = engine.Query(1);
  ASSERT_TRUE(batch.ok() && one.ok());
  EXPECT_LT(batch.value()[0].stats.gpu_seconds,
            one.value().stats.gpu_seconds);
}

TEST(RwrBatchTest, EmptyAndInvalidBatches) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph();
  auto kernel = CreateKernel("coo", spec);
  RwrEngine engine(kernel.get());
  ASSERT_TRUE(engine.Init(a, RwrOptions{}).ok());
  Result<std::vector<RwrResult>> empty = engine.QueryBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_FALSE(engine.QueryBatch({1, -5}).ok());
}

TEST(RwrBatchTest, MixedConvergenceSpeeds) {
  // A hub query converges differently from a leaf query; both must be
  // billed their own iteration counts.
  DeviceSpec spec;
  CsrMatrix a = TestGraph();
  auto kernel = CreateKernel("hyb", spec);
  RwrEngine engine(kernel.get());
  RwrOptions opts;
  opts.tolerance = 1e-6f;
  ASSERT_TRUE(engine.Init(a, opts).ok());
  Result<std::vector<RwrResult>> batch = engine.QueryBatch({0, 2499});
  ASSERT_TRUE(batch.ok());
  for (const RwrResult& r : batch.value()) {
    EXPECT_TRUE(r.stats.converged);
    EXPECT_EQ(static_cast<int>(r.stats.delta_history.size()),
              r.stats.iterations);
  }
}

}  // namespace
}  // namespace tilespmv
