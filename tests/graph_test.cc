#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "gen/power_law.h"
#include "graph/hits.h"
#include "graph/pagerank.h"
#include "graph/rwr.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

CsrMatrix TestGraph(uint64_t seed = 81) {
  return GenerateRmat(2000, 16000, RmatOptions{.seed = seed});
}

class GraphKernelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphKernelTest, PageRankMatchesReference) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph();
  auto kernel = CreateKernel(GetParam(), spec);
  PageRankOptions opts;
  opts.max_iterations = 60;
  Result<IterativeResult> r = RunPageRank(a, kernel.get(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<double> ref = PageRankReference(a, 0.85, 60);
  ASSERT_EQ(r.value().result.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(r.value().result[i], ref[i], 1e-4 + 0.02 * ref[i]) << i;
  }
}

TEST_P(GraphKernelTest, HitsMatchesReference) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(82);
  auto kernel = CreateKernel(GetParam(), spec);
  HitsOptions opts;
  opts.max_iterations = 40;
  Result<HitsScores> r = RunHits(a, kernel.get(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<double> ref_a, ref_h;
  HitsReference(a, 40, &ref_a, &ref_h);
  double dot_a = 0, norm1 = 0, norm2 = 0;
  for (size_t i = 0; i < ref_a.size(); ++i) {
    dot_a += r.value().authority[i] * ref_a[i];
    norm1 += r.value().authority[i] * r.value().authority[i];
    norm2 += ref_a[i] * ref_a[i];
  }
  // Cosine similarity of authority vectors ~ 1.
  EXPECT_GT(dot_a / std::sqrt(norm1 * norm2), 0.999);
}

TEST_P(GraphKernelTest, RwrMatchesReference) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(83);
  auto kernel = CreateKernel(GetParam(), spec);
  RwrEngine engine(kernel.get());
  RwrOptions opts;
  opts.max_iterations = 50;
  ASSERT_TRUE(engine.Init(a, opts).ok());
  for (int32_t node : {0, 37, 1999}) {
    Result<RwrResult> r = engine.Query(node);
    ASSERT_TRUE(r.ok());
    std::vector<double> ref = RwrReference(a, node, 0.9, 50);
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(r.value().scores[i], ref[i], 1e-4 + 0.02 * ref[i])
          << "node " << node << " entry " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GraphKernelTest,
                         ::testing::Values("cpu-csr", "coo", "hyb",
                                           "tile-coo", "tile-composite"),
                         [](const auto& info) {
                           std::string s = info.param;
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(PageRankTest, SumsToOneWithoutDanglingNodes) {
  // Give every node an out-edge so the Markov chain conserves mass.
  std::vector<Triplet> t;
  for (int32_t r = 0; r < 500; ++r) {
    t.push_back({r, (r + 1) % 500, 1.0f});
    t.push_back({r, (r * 7 + 3) % 500, 1.0f});
  }
  CsrMatrix a = CsrMatrix::FromTriplets(500, 500, std::move(t));
  DeviceSpec spec;
  auto kernel = CreateKernel("tile-composite", spec);
  Result<IterativeResult> r = RunPageRank(a, kernel.get(), PageRankOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().converged);
  double sum = std::accumulate(r.value().result.begin(),
                               r.value().result.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(PageRankTest, HubGetsHighRank) {
  // Star graph: everyone links to node 0.
  std::vector<Triplet> t;
  for (int32_t r = 1; r < 300; ++r) t.push_back({r, 0, 1.0f});
  t.push_back({0, 1, 1.0f});
  CsrMatrix a = CsrMatrix::FromTriplets(300, 300, std::move(t));
  DeviceSpec spec;
  auto kernel = CreateKernel("hyb", spec);
  Result<IterativeResult> r = RunPageRank(a, kernel.get(), PageRankOptions{});
  ASSERT_TRUE(r.ok());
  const std::vector<float>& p = r.value().result;
  for (int32_t i = 2; i < 300; ++i) EXPECT_GT(p[0], p[i]);
}

TEST(PageRankTest, TimingScalesWithIterations) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(84);
  auto kernel = CreateKernel("coo", spec);
  PageRankOptions opts;
  opts.tolerance = 0;  // Run to max_iterations.
  opts.max_iterations = 10;
  Result<IterativeResult> r10 = RunPageRank(a, kernel.get(), opts);
  ASSERT_TRUE(r10.ok());
  EXPECT_EQ(r10.value().iterations, 10);
  EXPECT_NEAR(r10.value().gpu_seconds,
              10 * r10.value().seconds_per_iteration, 1e-9);
}

TEST(PageRankTest, RejectsRectangularMatrix) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmatRect(100, 200, 500, RmatOptions{.seed = 85});
  auto kernel = CreateKernel("coo", spec);
  EXPECT_FALSE(RunPageRank(a, kernel.get(), PageRankOptions{}).ok());
}

TEST(HitsTest, ScoresNormalizedPerHalf) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(86);
  auto kernel = CreateKernel("hyb", spec);
  Result<HitsScores> r = RunHits(a, kernel.get(), HitsOptions{});
  ASSERT_TRUE(r.ok());
  double sum_a = 0, sum_h = 0;
  for (float v : r.value().authority) sum_a += std::fabs(v);
  for (float v : r.value().hub) sum_h += std::fabs(v);
  EXPECT_NEAR(sum_a, 1.0, 1e-3);
  EXPECT_NEAR(sum_h, 1.0, 1e-3);
}

TEST(RwrTest, QueryNodeKeepsHighestScore) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(87);
  auto kernel = CreateKernel("tile-composite", spec);
  RwrEngine engine(kernel.get());
  ASSERT_TRUE(engine.Init(a, RwrOptions{}).ok());
  Result<RwrResult> r = engine.Query(123);
  ASSERT_TRUE(r.ok());
  const std::vector<float>& s = r.value().scores;
  int32_t best = static_cast<int32_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
  EXPECT_EQ(best, 123);
}

TEST(RwrTest, OutOfRangeQueryRejected) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(88);
  auto kernel = CreateKernel("coo", spec);
  RwrEngine engine(kernel.get());
  ASSERT_TRUE(engine.Init(a, RwrOptions{}).ok());
  EXPECT_FALSE(engine.Query(-1).ok());
  EXPECT_FALSE(engine.Query(2000).ok());
}

TEST(RwrTest, EngineReusableAcrossQueries) {
  DeviceSpec spec;
  CsrMatrix a = TestGraph(89);
  auto kernel = CreateKernel("hyb", spec);
  RwrEngine engine(kernel.get());
  ASSERT_TRUE(engine.Init(a, RwrOptions{}).ok());
  Result<RwrResult> r1 = engine.Query(5);
  Result<RwrResult> r2 = engine.Query(5);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().scores, r2.value().scores);  // No state leaks.
}

}  // namespace
}  // namespace tilespmv
