// Tests for the extensions beyond the paper's core: personalized PageRank,
// the Fermi device preset with device-adapted tiling, and the device-memory
// accounting surfaced through KernelTiming.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/tile_composite.h"
#include "core/tiling.h"
#include "gen/power_law.h"
#include "graph/pagerank.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(PersonalizedPageRankTest, BiasesTowardRestartSet) {
  // Two cliques joined by one edge; personalize on clique A.
  std::vector<Triplet> t;
  const int32_t n = 200;
  for (int32_t i = 0; i < 100; ++i) {
    for (int32_t j = 0; j < 100; ++j) {
      if (i != j) t.push_back({i, j, 1.0f});
    }
  }
  for (int32_t i = 100; i < 200; ++i) {
    for (int32_t j = 100; j < 200; ++j) {
      if (i != j) t.push_back({i, j, 1.0f});
    }
  }
  t.push_back({0, 100, 1.0f});
  t.push_back({100, 0, 1.0f});
  CsrMatrix a = CsrMatrix::FromTriplets(n, n, std::move(t));

  DeviceSpec spec;
  auto kernel = CreateKernel("tile-composite", spec);
  std::vector<float> pers(n, 0.0f);
  for (int32_t i = 0; i < 100; ++i) pers[i] = 0.01f;
  PageRankOptions opts;
  opts.personalization = &pers;
  Result<IterativeResult> r = RunPageRank(a, kernel.get(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double mass_a = 0, mass_b = 0;
  for (int32_t i = 0; i < 100; ++i) mass_a += r.value().result[i];
  for (int32_t i = 100; i < 200; ++i) mass_b += r.value().result[i];
  EXPECT_GT(mass_a, 3 * mass_b);
}

TEST(PersonalizedPageRankTest, UniformVectorMatchesClassic) {
  CsrMatrix a = GenerateRmat(1500, 12000, RmatOptions{.seed = 61});
  DeviceSpec spec;
  std::vector<float> uniform(a.rows, 1.0f / a.rows);
  PageRankOptions with;
  with.personalization = &uniform;
  auto k1 = CreateKernel("hyb", spec);
  auto k2 = CreateKernel("hyb", spec);
  Result<IterativeResult> r1 = RunPageRank(a, k1.get(), with);
  Result<IterativeResult> r2 = RunPageRank(a, k2.get(), PageRankOptions{});
  ASSERT_TRUE(r1.ok() && r2.ok());
  for (size_t i = 0; i < r1.value().result.size(); ++i) {
    EXPECT_NEAR(r1.value().result[i], r2.value().result[i], 1e-6);
  }
}

TEST(PersonalizedPageRankTest, RelabeledKernelHandlesPersonalization) {
  // tile-composite relabels internally; the personalization must follow.
  CsrMatrix a = GenerateRmat(1000, 8000, RmatOptions{.seed = 62});
  DeviceSpec spec;
  std::vector<float> pers(a.rows, 0.0f);
  pers[123] = 1.0f;
  PageRankOptions opts;
  opts.personalization = &pers;
  auto tile = CreateKernel("tile-composite", spec);
  auto cpu = CreateKernel("cpu-csr", spec);
  Result<IterativeResult> rt = RunPageRank(a, tile.get(), opts);
  Result<IterativeResult> rc = RunPageRank(a, cpu.get(), opts);
  ASSERT_TRUE(rt.ok() && rc.ok());
  for (size_t i = 0; i < rt.value().result.size(); ++i) {
    ASSERT_NEAR(rt.value().result[i], rc.value().result[i],
                1e-4 + 0.02 * rc.value().result[i]);
  }
}

TEST(PersonalizedPageRankTest, WrongSizeRejected) {
  CsrMatrix a = GenerateRmat(500, 3000, RmatOptions{.seed = 63});
  DeviceSpec spec;
  std::vector<float> pers(13, 1.0f);
  PageRankOptions opts;
  opts.personalization = &pers;
  auto kernel = CreateKernel("coo", spec);
  EXPECT_FALSE(RunPageRank(a, kernel.get(), opts).ok());
}

TEST(DevicePresetTest, FermiDiffersAndWorks) {
  DeviceSpec fermi = DeviceSpec::FermiC2050();
  EXPECT_NE(fermi.num_sms, DeviceSpec::TeslaC1060().num_sms);
  EXPECT_GT(fermi.mem_bandwidth_gbps,
            DeviceSpec::TeslaC1060().mem_bandwidth_gbps);
  CsrMatrix a = GenerateRmat(20000, 200000, RmatOptions{.seed = 64});
  auto kernel = CreateKernel("tile-composite", fermi);
  ASSERT_TRUE(kernel->Setup(a).ok());
  std::vector<float> x(a.cols, 1.0f), want, got;
  CsrMultiply(a, x, &want);
  MultiplyOriginal(*kernel, x, &got);
  for (size_t i = 0; i < want.size(); ++i) ASSERT_NEAR(got[i], want[i], 1e-2);
}

TEST(DevicePresetTest, TilingWidthFollowsCacheSize) {
  TilingOptions tesla = TilingOptionsForDevice(DeviceSpec::TeslaC1060());
  EXPECT_EQ(tesla.tile_width, 64 * 1024);  // 256 KB / 4 B.
  TilingOptions fermi = TilingOptionsForDevice(DeviceSpec::FermiC2050());
  EXPECT_EQ(fermi.tile_width, 192 * 1024);  // 768 KB / 4 B.
}

TEST(DevicePresetTest, FasterDeviceFasterKernel) {
  CsrMatrix a = GenerateRmat(60000, 700000, RmatOptions{.seed = 65});
  auto tesla = CreateKernel("tile-composite", DeviceSpec::TeslaC1060());
  auto fermi = CreateKernel("tile-composite", DeviceSpec::FermiC2050());
  ASSERT_TRUE(tesla->Setup(a).ok());
  ASSERT_TRUE(fermi->Setup(a).ok());
  EXPECT_GT(fermi->timing().gflops(), tesla->timing().gflops());
}

TEST(DeviceBytesTest, AccountedAndPlausible) {
  CsrMatrix a = GenerateRmat(10000, 100000, RmatOptions{.seed = 66});
  DeviceSpec spec;
  for (const char* name : {"coo", "hyb", "tile-composite"}) {
    auto kernel = CreateKernel(name, spec);
    ASSERT_TRUE(kernel->Setup(a).ok()) << name;
    uint64_t bytes = kernel->timing().device_bytes;
    // At least the raw data (8 B/nnz + vectors), at most a generous blowup.
    EXPECT_GT(bytes, 8ULL * a.nnz()) << name;
    EXPECT_LT(bytes, 64ULL * a.nnz()) << name;
  }
}

}  // namespace
}  // namespace tilespmv
