#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/autotune.h"
#include "core/tile_composite.h"
#include "gen/power_law.h"
#include "sparse/permute.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(ChooseWorkloadTest, RespectsLowerBound) {
  DeviceSpec spec;
  PerfModel model(spec);
  std::vector<int64_t> lens = {500, 40, 30, 20, 10, 5, 5, 5};
  TileAutotune t = ChooseWorkloadSize(lens, true, model);
  // The longest row cannot be split: WL >= 500 and a multiple of 500 steps.
  EXPECT_GE(t.workload_size, 500);
  EXPECT_EQ(t.workload_size % 500, 0);
  EXPECT_GE(t.candidates_tried, 1);
}

TEST(ChooseWorkloadTest, RespectsUpperBound) {
  DeviceSpec spec;
  PerfModel model(spec);
  std::vector<int64_t> lens(100000, 30);  // 3M nnz, first row 30.
  TileAutotune t = ChooseWorkloadSize(lens, true, model);
  int64_t upper = 3000000 / spec.MaxActiveWarps();
  EXPECT_LE(t.workload_size, upper);
}

TEST(ChooseWorkloadTest, EmptyTile) {
  DeviceSpec spec;
  PerfModel model(spec);
  TileAutotune t = ChooseWorkloadSize({}, true, model);
  EXPECT_EQ(t.workload_size, 0);
}

TEST(ChooseWorkloadTest, PredictedTimeIsBestAmongCandidates) {
  DeviceSpec spec;
  PerfModel model(spec);
  std::vector<int64_t> lens;
  for (int i = 0; i < 5000; ++i) lens.push_back(1 + 2000 / (i + 1));
  std::sort(lens.begin(), lens.end(), std::greater<int64_t>());
  TileAutotune t = ChooseWorkloadSize(lens, true, model);
  // Cross-check a few other candidates cannot beat the chosen one.
  for (int64_t wl :
       {lens[0], 2 * lens[0], 16 * lens[0], 64 * lens[0]}) {
    EXPECT_LE(t.predicted_seconds,
              model.PredictTileSeconds(lens, wl, true) + 1e-12);
  }
}

TEST(AutotunePlanTest, HeuristicTileCountMatchesAlgorithmOne) {
  DeviceSpec spec;
  PerfModel model(spec);
  CsrMatrix a = GenerateRmat(100000, 800000, RmatOptions{.seed = 71});
  CsrMatrix sorted = ApplyColumnPermutation(a, SortColumnsByLengthDesc(a));
  TilingOptions opts;
  opts.tile_width = 4096;
  AutotunePlan plan = AutotuneTileComposite(sorted, opts, model);
  EXPECT_EQ(plan.num_tiles,
            HeuristicNumTiles(sorted.ColLengths(), opts.tile_width));
  EXPECT_EQ(plan.tiles.size(), static_cast<size_t>(plan.num_tiles));
  EXPECT_GT(plan.predicted_seconds, 0.0);
}

TEST(AutotunePlanTest, AutoTunedKernelCloseToExhaustiveBest) {
  // Fig 5(b): the auto-tuned configuration lands within a few percent of the
  // best configuration found by (coarse) exhaustive search over tile counts.
  DeviceSpec spec;
  // Large enough that per-tile launch overhead doesn't dominate (the
  // regime the paper's heuristic targets).
  CsrMatrix a = GenerateRmat(40000, 1500000, RmatOptions{.seed = 72});
  TileCompositeOptions opts;
  opts.tiling.tile_width = 8192;

  TileCompositeKernel tuned(spec, opts);
  ASSERT_TRUE(tuned.Setup(a).ok());
  double tuned_time = tuned.timing().seconds;

  double best = tuned_time;
  for (int nt = 0; nt <= 5; ++nt) {
    TileCompositeOptions forced = opts;
    forced.tiling.num_tiles = nt;
    TileCompositeKernel k(spec, forced);
    ASSERT_TRUE(k.Setup(a).ok());
    best = std::min(best, k.timing().seconds);
  }
  EXPECT_LT(tuned_time, 1.25 * best);
}

TEST(AutotunePlanTest, PredictedWithinFactorOfSimulated) {
  // Fig 5(c): prediction vs "measured" (full simulation) within ~2x here —
  // the paper reports ~20% on real hardware; our simulated measurement and
  // analytic model share cost recipes but differ in cache behavior, padding
  // fetches, camping and partial-wave effects.
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(60000, 500000, RmatOptions{.seed = 73});
  TileCompositeKernel k(spec);
  ASSERT_TRUE(k.Setup(a).ok());
  double measured = k.timing().seconds;
  double predicted = k.predicted_seconds();
  EXPECT_GT(predicted, 0.2 * measured);
  EXPECT_LT(predicted, 5.0 * measured);
}

TEST(AutotunePlanTest, WorkloadSizesRecorded) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(30000, 250000, RmatOptions{.seed = 74});
  TileCompositeOptions opts;
  opts.tiling.tile_width = 4096;  // Force several tiles + a sparse part.
  TileCompositeKernel k(spec, opts);
  ASSERT_TRUE(k.Setup(a).ok());
  // One workload size per dense tile plus one for the sparse remainder
  // (absent when the tiles swallowed every occupied column).
  EXPECT_GE(k.workload_sizes().size(), static_cast<size_t>(k.num_tiles()));
  EXPECT_LE(k.workload_sizes().size(),
            static_cast<size_t>(k.num_tiles()) + 1);
  EXPECT_GE(k.num_tiles(), 1);
  for (int64_t wl : k.workload_sizes()) EXPECT_GT(wl, 0);
}

TEST(AutotunePlanTest, ForcedWorkloadOverridesTuner) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(30000, 250000, RmatOptions{.seed = 75});
  TileCompositeOptions opts;
  opts.forced_workload = 4096;
  TileCompositeKernel k(spec, opts);
  ASSERT_TRUE(k.Setup(a).ok());
  for (int64_t wl : k.workload_sizes()) EXPECT_GE(wl, 4096);
}

}  // namespace
}  // namespace tilespmv
