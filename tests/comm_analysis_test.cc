#include <gtest/gtest.h>

#include "multigpu/comm_analysis.h"

namespace tilespmv {
namespace {

TEST(CommAnalysisTest, RowsSendOnlyTheirSlice) {
  CommCost rows = AnalyzeCommunication(1000000, 8,
                                       DistributionLayout::kByRows);
  EXPECT_EQ(rows.elements_sent_per_node, 125000);
  EXPECT_FALSE(rows.needs_reduction);
}

TEST(CommAnalysisTest, ColumnsSendEverythingAndReduce) {
  CommCost cols = AnalyzeCommunication(1000000, 8,
                                       DistributionLayout::kByColumns);
  EXPECT_EQ(cols.elements_sent_per_node, 1000000);
  EXPECT_TRUE(cols.needs_reduction);
}

TEST(CommAnalysisTest, PaperOrderingRowsBeatGridsBeatColumns) {
  // Section 3.2's argument, for every node count it discusses.
  for (int p : {2, 4, 8, 9, 10, 16}) {
    CommCost rows = AnalyzeCommunication(1 << 20, p,
                                         DistributionLayout::kByRows);
    CommCost grid = AnalyzeCommunication(1 << 20, p,
                                         DistributionLayout::kByGrid);
    CommCost cols = AnalyzeCommunication(1 << 20, p,
                                         DistributionLayout::kByColumns);
    EXPECT_LT(rows.elements_sent_per_node, grid.elements_sent_per_node)
        << p;
    EXPECT_LE(grid.elements_sent_per_node, cols.elements_sent_per_node)
        << p;
    // Only the row layout avoids the post-gather reduction.
    EXPECT_FALSE(rows.needs_reduction);
    EXPECT_TRUE(grid.needs_reduction);
  }
}

TEST(CommAnalysisTest, SingleNodeDegenerates) {
  CommCost rows = AnalyzeCommunication(1000, 1, DistributionLayout::kByRows);
  EXPECT_EQ(rows.elements_sent_per_node, 1000);  // Sends to nobody though.
  EXPECT_EQ(rows.elements_received_per_node, 0);
}

TEST(CommAnalysisTest, TrafficScalesWithNodesForRows) {
  // Total traffic for rows is ~N regardless of P (each element broadcast
  // once); for columns it is N * P — the scalability gap.
  int64_t n = 1 << 20;
  CommCost rows4 = AnalyzeCommunication(n, 4, DistributionLayout::kByRows);
  CommCost rows16 = AnalyzeCommunication(n, 16, DistributionLayout::kByRows);
  EXPECT_NEAR(static_cast<double>(rows4.TotalTrafficBytes(4)),
              static_cast<double>(rows16.TotalTrafficBytes(16)), 4.0 * n);
  CommCost cols4 = AnalyzeCommunication(n, 4,
                                        DistributionLayout::kByColumns);
  CommCost cols16 = AnalyzeCommunication(n, 16,
                                         DistributionLayout::kByColumns);
  EXPECT_EQ(cols16.TotalTrafficBytes(16), 4 * cols4.TotalTrafficBytes(4));
}

TEST(CommAnalysisTest, NamesStable) {
  EXPECT_STREQ(LayoutName(DistributionLayout::kByRows), "by-rows");
  EXPECT_STREQ(LayoutName(DistributionLayout::kByColumns), "by-columns");
  EXPECT_STREQ(LayoutName(DistributionLayout::kByGrid), "by-grid");
}

}  // namespace
}  // namespace tilespmv
