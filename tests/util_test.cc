#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"

namespace tilespmv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rows");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rows");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),   Status::UnsupportedFormat("").code(),
      Status::ResourceExhausted("").code(), Status::IoError("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 5u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::IoError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = r.take();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Pcg32Test, DeterministicForSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // Roughly uniform.
}

TEST(StatsTest, AnalyzeLengthsBasics) {
  LengthDistribution d = AnalyzeLengths({1, 2, 3, 4, 10});
  EXPECT_EQ(d.count, 5);
  EXPECT_EQ(d.total, 20);
  EXPECT_EQ(d.max, 10);
  EXPECT_DOUBLE_EQ(d.mean, 4.0);
}

TEST(StatsTest, EmptyLengths) {
  LengthDistribution d = AnalyzeLengths({});
  EXPECT_EQ(d.count, 0);
  EXPECT_EQ(d.total, 0);
}

TEST(StatsTest, PowerLawAlphaRecoversExponent) {
  // Sample from a discrete power law with alpha ~ 2.3 via inverse CDF.
  Pcg32 rng(42);
  std::vector<int64_t> lengths;
  const double alpha = 2.3;
  for (int i = 0; i < 200000; ++i) {
    double u = rng.NextDouble();
    double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));  // xmin = 1.
    lengths.push_back(static_cast<int64_t>(x));
  }
  // Flooring the continuous samples biases the head of the distribution;
  // estimate on the tail (xmin = 5) where the discretization washes out.
  double est = EstimatePowerLawAlpha(lengths, 5);
  EXPECT_NEAR(est, alpha, 0.25);
}

TEST(StatsTest, UniformLengthsNotPowerLaw) {
  std::vector<int64_t> lengths(10000, 50);
  EXPECT_FALSE(LooksPowerLaw(AnalyzeLengths(lengths)));
}

TEST(StatsTest, SkewedLengthsArePowerLaw) {
  Pcg32 rng(4);
  std::vector<int64_t> lengths;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.NextDouble();
    lengths.push_back(static_cast<int64_t>(std::pow(1.0 - u, -1.0 / 1.2)));
  }
  EXPECT_TRUE(LooksPowerLaw(AnalyzeLengths(lengths)));
}

TEST(StatsTest, AlphaNeedsEnoughSamples) {
  EXPECT_EQ(EstimatePowerLawAlpha({5, 6, 7}, 1), 0.0);
}

}  // namespace
}  // namespace tilespmv
