#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace tilespmv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rows");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rows");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),   Status::UnsupportedFormat("").code(),
      Status::ResourceExhausted("").code(), Status::IoError("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 5u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::IoError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = r.take();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Pcg32Test, DeterministicForSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // Roughly uniform.
}

TEST(StatsTest, AnalyzeLengthsBasics) {
  LengthDistribution d = AnalyzeLengths({1, 2, 3, 4, 10});
  EXPECT_EQ(d.count, 5);
  EXPECT_EQ(d.total, 20);
  EXPECT_EQ(d.max, 10);
  EXPECT_DOUBLE_EQ(d.mean, 4.0);
}

TEST(StatsTest, EmptyLengths) {
  LengthDistribution d = AnalyzeLengths({});
  EXPECT_EQ(d.count, 0);
  EXPECT_EQ(d.total, 0);
}

TEST(StatsTest, PowerLawAlphaRecoversExponent) {
  // Sample from a discrete power law with alpha ~ 2.3 via inverse CDF.
  Pcg32 rng(42);
  std::vector<int64_t> lengths;
  const double alpha = 2.3;
  for (int i = 0; i < 200000; ++i) {
    double u = rng.NextDouble();
    double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));  // xmin = 1.
    lengths.push_back(static_cast<int64_t>(x));
  }
  // Flooring the continuous samples biases the head of the distribution;
  // estimate on the tail (xmin = 5) where the discretization washes out.
  double est = EstimatePowerLawAlpha(lengths, 5);
  EXPECT_NEAR(est, alpha, 0.25);
}

TEST(StatsTest, UniformLengthsNotPowerLaw) {
  std::vector<int64_t> lengths(10000, 50);
  EXPECT_FALSE(LooksPowerLaw(AnalyzeLengths(lengths)));
}

TEST(StatsTest, SkewedLengthsArePowerLaw) {
  Pcg32 rng(4);
  std::vector<int64_t> lengths;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.NextDouble();
    lengths.push_back(static_cast<int64_t>(std::pow(1.0 - u, -1.0 / 1.2)));
  }
  EXPECT_TRUE(LooksPowerLaw(AnalyzeLengths(lengths)));
}

TEST(StatsTest, AlphaNeedsEnoughSamples) {
  EXPECT_EQ(EstimatePowerLawAlpha({5, 6, 7}, 1), 0.0);
}

TEST(PercentileTest, EmptySampleIsZero) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_EQ(Percentile({}, 100.0), 0.0);
}

TEST(PercentileTest, SingleSampleIsThatSampleAtAnyQ) {
  for (double q : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(Percentile({7.5}, q), 7.5) << "q=" << q;
  }
}

TEST(PercentileTest, EndpointsAndMidpointOfSortedSample) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // Sorted internally.
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_EQ(Percentile(v, 100.0), 4.0);
  // Midpoint interpolates between the two middle samples.
  EXPECT_NEAR(Percentile(v, 50.0), 2.5, 1e-12);
}

TEST(PercentileTest, DuplicateHeavySampleStaysOnPlateau) {
  // 1 then 99 copies of 5: every percentile above the first gap sits on the
  // plateau and interpolation must not invent values between 1 and 5.
  std::vector<double> v(100, 5.0);
  v[0] = 1.0;
  EXPECT_NEAR(Percentile(v, 50.0), 5.0, 1e-12);
  EXPECT_NEAR(Percentile(v, 95.0), 5.0, 1e-12);
  EXPECT_NEAR(Percentile(v, 99.0), 5.0, 1e-12);
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Ranks 0..9 hold 0..90; q maps linearly over (n-1) gaps.
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) v.push_back(10.0 * i);
  EXPECT_NEAR(Percentile(v, 25.0), 22.5, 1e-12);
  EXPECT_NEAR(Percentile(v, 95.0), 85.5, 1e-12);
}

TEST(WallTimerTest, NeverRunsBackwards) {
  WallTimer t;
  double last = t.Seconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 1000; ++i) {
    double now = t.Seconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(WallTimerTest, ResetRestartsFromZero) {
  WallTimer t;
  // Burn a little time so the pre-reset reading is strictly positive.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double before = t.Seconds();
  EXPECT_GT(before, 0.0);
  t.Reset();
  EXPECT_LT(t.Seconds(), before);
}

TEST(WallTimerTest, MeasuresElapsedWork) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace tilespmv
