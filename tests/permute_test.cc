#include <gtest/gtest.h>

#include <algorithm>

#include "gen/power_law.h"
#include "sparse/csr.h"
#include "sparse/permute.h"
#include "util/random.h"

namespace tilespmv {
namespace {

CsrMatrix RandomMatrix(int32_t rows, int32_t cols, int64_t nnz,
                       uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> t;
  for (int64_t i = 0; i < nnz; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(rows)),
                        static_cast<int32_t>(rng.NextBounded(cols)),
                        rng.NextFloat() + 0.1f});
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(t));
}

std::vector<float> RandomVector(int32_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> x(n);
  for (float& v : x) v = rng.NextFloat();
  return x;
}

TEST(PermuteTest, InvertRoundTrip) {
  Permutation p = {3, 1, 0, 2};
  Permutation inv = InvertPermutation(p);
  EXPECT_EQ(inv, (Permutation{2, 1, 3, 0}));
  EXPECT_EQ(InvertPermutation(inv), p);
}

TEST(PermuteTest, ValidityCheck) {
  EXPECT_TRUE(IsValidPermutation({2, 0, 1}));
  EXPECT_FALSE(IsValidPermutation({0, 0, 1}));
  EXPECT_FALSE(IsValidPermutation({0, 3, 1}));
  EXPECT_TRUE(IsValidPermutation({}));
}

TEST(PermuteTest, SortColumnsDescendingAndStable) {
  // Columns with lengths 1, 3, 0, 3, 2.
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 5,
      {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {2, 1, 1},
       {0, 3, 1}, {1, 3, 1}, {2, 3, 1}, {1, 4, 1}, {2, 4, 1}});
  Permutation p = SortColumnsByLengthDesc(m);
  ASSERT_TRUE(IsValidPermutation(p));
  // Descending lengths 3,3,2,1,0; ties (cols 1 and 3) keep original order.
  EXPECT_EQ(p, (Permutation{1, 3, 4, 0, 2}));
}

TEST(PermuteTest, SortedColumnLengthsAreNonIncreasing) {
  CsrMatrix m = GenerateRmat(2048, 20000, RmatOptions{.seed = 3});
  Permutation p = SortColumnsByLengthDesc(m);
  ASSERT_TRUE(IsValidPermutation(p));
  CsrMatrix sorted = ApplyColumnPermutation(m, p);
  std::vector<int64_t> lengths = sorted.ColLengths();
  EXPECT_TRUE(std::is_sorted(lengths.begin(), lengths.end(),
                             [](int64_t a, int64_t b) { return a > b; }));
}

TEST(PermuteTest, ColumnPermutationPreservesMultiply) {
  CsrMatrix m = RandomMatrix(40, 60, 400, 21);
  Permutation p = SortColumnsByLengthDesc(m);
  CsrMatrix mp = ApplyColumnPermutation(m, p);
  ASSERT_TRUE(mp.Validate().ok());
  std::vector<float> x = RandomVector(60, 22);
  std::vector<float> xp;
  PermuteVector(p, x, &xp);
  std::vector<float> y1, y2;
  CsrMultiply(m, x, &y1);
  CsrMultiply(mp, xp, &y2);
  for (int i = 0; i < 40; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-4);
}

TEST(PermuteTest, RowPermutationPermutesResult) {
  CsrMatrix m = RandomMatrix(50, 50, 300, 23);
  Permutation p = SortRowsByLengthDesc(m);
  CsrMatrix mp = ApplyRowPermutation(m, p);
  ASSERT_TRUE(mp.Validate().ok());
  std::vector<float> x = RandomVector(50, 24);
  std::vector<float> y1, y2;
  CsrMultiply(m, x, &y1);
  CsrMultiply(mp, x, &y2);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(y2[i], y1[p[i]], 1e-4);
}

TEST(PermuteTest, SymmetricPermutationPreservesMultiplyUpToRelabel) {
  CsrMatrix m = RandomMatrix(64, 64, 512, 25);
  Permutation p = SortColumnsByLengthDesc(m);
  CsrMatrix mp = ApplySymmetricPermutation(m, p);
  std::vector<float> x = RandomVector(64, 26);
  std::vector<float> xp;
  PermuteVector(p, x, &xp);
  std::vector<float> y_orig, y_perm, y_back;
  CsrMultiply(m, x, &y_orig);
  CsrMultiply(mp, xp, &y_perm);
  UnpermuteVector(p, y_perm, &y_back);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(y_back[i], y_orig[i], 1e-4);
}

TEST(PermuteTest, VectorPermuteRoundTrip) {
  Permutation p = {4, 2, 0, 1, 3};
  std::vector<float> x = {10, 11, 12, 13, 14};
  std::vector<float> xp, back;
  PermuteVector(p, x, &xp);
  EXPECT_EQ(xp, (std::vector<float>{14, 12, 10, 11, 13}));
  UnpermuteVector(p, xp, &back);
  EXPECT_EQ(back, x);
}

TEST(PermuteTest, CountingSortHandlesAllEqualLengths) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 4, {{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {0, 3, 1}});
  Permutation p = SortColumnsByLengthDesc(m);
  EXPECT_EQ(p, (Permutation{0, 1, 2, 3}));  // Stable: identity on ties.
}

}  // namespace
}  // namespace tilespmv
