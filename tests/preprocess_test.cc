#include <gtest/gtest.h>

#include <cmath>

#include "core/preprocess.h"
#include "gen/power_law.h"
#include "graph/pagerank.h"
#include "kernels/spmv.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

TEST(PreprocessTest, StagesMeasuredAndSummed) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(30000, 300000, RmatOptions{.seed = 91});
  Result<PreprocessReport> r = MeasurePreprocessing(a, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PreprocessReport& p = r.value();
  EXPECT_GT(p.total_seconds, 0.0);
  EXPECT_NEAR(p.total_seconds,
              p.sort_columns_seconds + p.relabel_seconds + p.tiling_seconds +
                  p.composite_seconds,
              1e-9);
  EXPECT_GT(p.baseline_iteration_seconds, 0.0);
  EXPECT_GT(p.tile_iteration_seconds, 0.0);
}

TEST(PreprocessTest, BreakevenFiniteWhenTileKernelWins) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(60000, 700000, RmatOptions{.seed = 92});
  Result<PreprocessReport> r = MeasurePreprocessing(a, spec);
  ASSERT_TRUE(r.ok());
  // On a power-law matrix tile-composite beats HYB, so break-even exists.
  EXPECT_LT(r.value().tile_iteration_seconds,
            r.value().baseline_iteration_seconds);
  EXPECT_TRUE(std::isfinite(r.value().breakeven_iterations));
  EXPECT_GT(r.value().breakeven_iterations, 0.0);
}

TEST(PreprocessTest, UnknownBaselineRejected) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(1000, 8000, RmatOptions{.seed = 93});
  EXPECT_FALSE(MeasurePreprocessing(a, spec, "bogus").ok());
}

TEST(DeltaHistoryTest, RecordedAndDecaying) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(2000, 16000, RmatOptions{.seed = 94});
  auto kernel = CreateKernel("hyb", spec);
  PageRankOptions opts;
  opts.tolerance = 0;
  opts.max_iterations = 30;
  Result<IterativeResult> r = RunPageRank(a, kernel.get(), opts);
  ASSERT_TRUE(r.ok());
  const auto& h = r.value().delta_history;
  ASSERT_EQ(static_cast<int>(h.size()), r.value().iterations);
  // Power iteration with damping c contracts geometrically: the tail of the
  // history must shrink by ~c per step.
  for (size_t i = 5; i < h.size(); ++i) {
    EXPECT_LT(h[i], h[i - 1]) << i;
  }
  EXPECT_LT(h.back(), 0.01 * h.front());
}

TEST(LaunchDetailsTest, PerLaunchBreakdownExposed) {
  DeviceSpec spec;
  CsrMatrix a = GenerateRmat(20000, 200000, RmatOptions{.seed = 95});
  auto kernel = CreateKernel("tile-composite", spec);
  ASSERT_TRUE(kernel->Setup(a).ok());
  const KernelTiming& t = kernel->timing();
  ASSERT_EQ(static_cast<int>(t.launch_details.size()), t.launches);
  double sum = 0;
  for (const auto& l : t.launch_details) {
    EXPECT_GT(l.seconds, 0.0);
    sum += l.seconds;
  }
  EXPECT_NEAR(sum, t.seconds, 1e-9);
}

}  // namespace
}  // namespace tilespmv
