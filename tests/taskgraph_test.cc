// Unit tests for par::TaskGraph, the dependency-driven dataflow executor:
// graph construction and freezing, dependency ordering (every task starts
// after all of its predecessors finished), exactly-once execution, frozen
// graphs replayed sequentially and concurrently, inline execution from
// inside pool chunks, bitwise determinism of graph-encoded reductions
// across thread counts, per-task trace spans behind the tracer's
// task-detail flag, and (in fault builds) a chaos drill with the
// "par/task_slow" stall point armed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "par/pool.h"
#include "par/taskgraph.h"
#include "robust/fault_injection.h"

namespace tilespmv::par {
namespace {

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

TEST(TaskGraph, ConstructionAndAccessors) {
  TaskGraph graph;
  EXPECT_EQ(graph.num_tasks(), 0);
  const int32_t a = graph.AddTask("test/a");
  const int32_t b = graph.AddTask("test/b");
  const int32_t c = graph.AddTask("test/c");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  graph.AddDep(c, a);
  graph.AddDep(c, b);
  graph.AddDep(c, a);  // Duplicate edge collapses to one.
  EXPECT_FALSE(graph.frozen());
  graph.Freeze();
  EXPECT_TRUE(graph.frozen());
  EXPECT_EQ(graph.num_tasks(), 3);
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.label(a), "test/a");
  EXPECT_EQ(graph.label(c), "test/c");
  ASSERT_EQ(graph.preds(c).size(), 2u);
  EXPECT_EQ(graph.preds(c)[0], a);
  EXPECT_EQ(graph.preds(c)[1], b);
  EXPECT_TRUE(graph.preds(a).empty());
}

TEST(TaskGraph, EmptyGraphRunsWithoutInvokingBody) {
  TaskGraph graph;
  graph.Freeze();
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  graph.Run(pool, [&](int32_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(TaskGraph, DependenciesOrderExecution) {
  // Diamond: a → {b, c} → d. d must observe both middle tasks' writes, and
  // the middle tasks must observe a's.
  TaskGraph graph;
  const int32_t a = graph.AddTask("test/a");
  const int32_t b = graph.AddTask("test/b");
  const int32_t c = graph.AddTask("test/c");
  const int32_t d = graph.AddTask("test/d");
  graph.AddDep(b, a);
  graph.AddDep(c, a);
  graph.AddDep(d, b);
  graph.AddDep(d, c);
  graph.Freeze();
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<bool> done[4] = {};
    bool order_ok = true;
    graph.Run(pool, [&](int32_t task) {
      if (task == b || task == c) {
        if (!done[a].load()) order_ok = false;
      } else if (task == d) {
        if (!done[b].load() || !done[c].load()) order_ok = false;
      }
      done[task].store(true);
    });
    ASSERT_TRUE(order_ok) << "round " << round;
    for (int t = 0; t < 4; ++t) ASSERT_TRUE(done[t].load());
  }
}

TEST(TaskGraph, EveryTaskRunsExactlyOncePerRun) {
  TaskGraph graph;
  constexpr int kTasks = 500;
  for (int t = 0; t < kTasks; ++t) graph.AddTask("test/independent");
  // A sprinkling of edges so the ready set refills during the run.
  for (int t = 7; t < kTasks; t += 7) graph.AddDep(t, t - 7);
  graph.Freeze();
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(kTasks);
  graph.Run(pool, [&](int32_t task) { ++counts[task]; });
  for (int t = 0; t < kTasks; ++t) {
    ASSERT_EQ(counts[t].load(), 1) << "task " << t;
  }
}

TEST(TaskGraph, FrozenGraphReplays) {
  TaskGraph graph;
  const int32_t a = graph.AddTask("test/a");
  const int32_t b = graph.AddTask("test/b");
  graph.AddDep(b, a);
  graph.Freeze();
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  for (int run = 0; run < 50; ++run) {
    graph.Run(pool, [&](int32_t) { ++calls; });
  }
  EXPECT_EQ(calls.load(), 100);
}

TEST(TaskGraph, ConcurrentRunsAreIndependent) {
  // The serving engine replays one frozen plan graph from many request
  // workers at once; each Run must see its own complete execution.
  TaskGraph graph;
  constexpr int kTasks = 64;
  for (int t = 0; t < kTasks; ++t) graph.AddTask("test/t");
  for (int t = 1; t < kTasks; ++t) graph.AddDep(t, t / 2);  // Binary tree.
  graph.Freeze();
  ThreadPool pool(4);
  constexpr int kRunners = 6;
  constexpr int kRounds = 25;
  std::vector<std::vector<int>> counts(kRunners,
                                       std::vector<int>(kTasks, 0));
  std::vector<std::thread> runners;
  for (int r = 0; r < kRunners; ++r) {
    runners.emplace_back([&graph, &pool, &counts, r] {
      for (int round = 0; round < kRounds; ++round) {
        graph.Run(pool, [&](int32_t task) { ++counts[r][task]; });
      }
    });
  }
  for (std::thread& t : runners) t.join();
  for (int r = 0; r < kRunners; ++r) {
    for (int t = 0; t < kTasks; ++t) {
      ASSERT_EQ(counts[r][t], kRounds) << "runner " << r << " task " << t;
    }
  }
}

TEST(TaskGraph, RunFromInsidePoolChunkExecutesInline) {
  // A Run issued from inside a pool-executed chunk must not deadlock: it
  // drains inline with one participant, in deterministic Kahn order.
  TaskGraph graph;
  const int32_t a = graph.AddTask("test/a");
  const int32_t b = graph.AddTask("test/b");
  const int32_t c = graph.AddTask("test/c");
  graph.AddDep(c, a);
  graph.AddDep(c, b);
  graph.Freeze();
  ThreadPool pool(4);
  std::vector<std::vector<int32_t>> orders(4);
  LoopOptions options;
  options.grain = 1;
  pool.ParallelFor(0, 4, options, [&](int64_t b0, int64_t b1) {
    for (int64_t i = b0; i < b1; ++i) {
      graph.Run(pool, [&, i](int32_t task) { orders[i].push_back(task); });
    }
  });
  for (int i = 0; i < 4; ++i) {
    // Single participant: FIFO seeded ascending → a, b, then c.
    ASSERT_EQ(orders[i], (std::vector<int32_t>{a, b, c})) << "chunk " << i;
  }
}

TEST(TaskGraph, GraphEncodedReductionBitwiseAcrossThreadCounts) {
  // The tile-DAG pattern in miniature: chunk tasks produce float partials,
  // one reduce task combines them in task-id order. The reduction tree is
  // encoded in the graph, so the bits must match at every thread count.
  constexpr int kChunks = 37;
  constexpr int kPerChunk = 1009;
  std::vector<float> values(kChunks * kPerChunk);
  uint64_t state = 0x243f6a8885a308d3ULL;
  for (float& v : values) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<float>((state >> 40) % 1000) * 1e-3f - 0.5f;
  }
  TaskGraph graph;
  for (int cth = 0; cth < kChunks; ++cth) graph.AddTask("test/chunk");
  const int32_t reduce = graph.AddTask("test/reduce");
  for (int cth = 0; cth < kChunks; ++cth) graph.AddDep(reduce, cth);
  graph.Freeze();
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<float> partials(kChunks, 0.0f);
    float total = 0.0f;
    graph.Run(pool, [&](int32_t task) {
      if (task < kChunks) {
        float local = 0.0f;
        for (int i = 0; i < kPerChunk; ++i) {
          local += values[task * kPerChunk + i];
        }
        partials[task] = local;
      } else {
        for (int cth = 0; cth < kChunks; ++cth) total += partials[cth];
      }
    });
    return total;
  };
  const float at1 = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(FloatBits(run(threads)), FloatBits(at1))
        << threads << " threads";
  }
}

TEST(TaskGraph, RecordsTaskSpansOnlyWhenTaskDetailOn) {
  TaskGraph graph;
  const int32_t a = graph.AddTask("test/span_a");
  const int32_t b = graph.AddTask("test/span_b");
  graph.AddDep(b, a);
  graph.Freeze();
  ThreadPool pool(2);

  // Tracing on, task detail off (the production default): no task spans.
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().set_task_detail(false);
  obs::Tracer::Global().Enable();
  graph.Run(pool, [](int32_t) {});
  for (const obs::TraceEvent& e : obs::Tracer::Global().Events()) {
    EXPECT_NE(e.cat, "task") << e.name;
  }

  // Task detail on: one span per task, carrying the id, the dependency
  // edges, and a nonzero run id in bind_id — what --critical-path needs.
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().set_task_detail(true);
  obs::Tracer::Global().Enable();
  graph.Run(pool, [](int32_t) {});
  int task_spans = 0;
  for (const obs::TraceEvent& e : obs::Tracer::Global().Events()) {
    if (e.cat != "task") continue;
    ++task_spans;
    EXPECT_NE(e.bind_id, 0u);
    if (e.name == "test/span_a") {
      EXPECT_EQ(e.args, "\"task\":0");
    } else {
      EXPECT_EQ(e.name, "test/span_b");
      EXPECT_EQ(e.args, "\"task\":1,\"deps\":\"0\"");
    }
  }
  EXPECT_EQ(task_spans, 2);
  obs::Tracer::Global().set_task_detail(false);
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Clear();
}

#if defined(TILESPMV_FAULTS_ENABLED)

TEST(TaskGraphChaos, CompletesCorrectlyWithTaskStallsArmed) {
  // Chaos drill: the "par/task_slow" stall point fires on a fraction of
  // task executions. Stalls reshuffle completion timing but must never
  // change the dependency order, the exactly-once contract, or the bits of
  // a graph-encoded reduction.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .Configure("par/task_slow:p=0.2:sleep_ms=0.2;seed=11")
                  .ok());
  TaskGraph graph;
  constexpr int kChunks = 24;
  for (int cth = 0; cth < kChunks; ++cth) graph.AddTask("test/chunk");
  const int32_t reduce = graph.AddTask("test/reduce");
  for (int cth = 0; cth < kChunks; ++cth) graph.AddDep(reduce, cth);
  graph.Freeze();
  ThreadPool pool(8);
  float baseline = 0.0f;
  for (int round = 0; round < 20; ++round) {
    std::vector<float> partials(kChunks, 0.0f);
    std::atomic<int> chunk_runs{0};
    float total = 0.0f;
    graph.Run(pool, [&](int32_t task) {
      if (task < kChunks) {
        partials[task] = 1.0f / static_cast<float>(task + 1);
        ++chunk_runs;
      } else {
        for (int cth = 0; cth < kChunks; ++cth) total += partials[cth];
      }
    });
    ASSERT_EQ(chunk_runs.load(), kChunks) << "round " << round;
    if (round == 0) {
      baseline = total;
    } else {
      ASSERT_EQ(FloatBits(total), FloatBits(baseline)) << "round " << round;
    }
  }
  EXPECT_GT(robust::FaultInjector::Global().fires_total(), 0u);
  robust::FaultInjector::Global().Reset();
}

#else  // !TILESPMV_FAULTS_ENABLED

TEST(TaskGraphChaos, RequiresFaultBuild) {
  GTEST_SKIP() << "fault-injection points compiled out; configure with "
                  "-DTILESPMV_FAULTS=ON to run the task-stall chaos drill";
}

#endif  // TILESPMV_FAULTS_ENABLED

}  // namespace
}  // namespace tilespmv::par
