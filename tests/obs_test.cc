// Tests for the observability layer: span tracer ring buffer and Chrome
// export, flow linkage, metrics instruments and exporters, the query
// journal / flight recorder, and the recorded-overhead bound on the
// PageRank loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gen/power_law.h"
#include "graph/pagerank.h"
#include "kernels/spmv.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace tilespmv::obs {
namespace {

// The global tracer is shared by every test in this binary; each test that
// enables it must leave it disabled and empty.
class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

#ifndef SPMV_OBS_DISABLED

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer::Global().Disable();
  {
    TraceSpan span("cat", "phase/step");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TracerTest, RecordsNestedSpansWithArgs) {
  Tracer::Global().Enable();
  {
    TraceSpan outer("graph", "pagerank/iteration");
    ASSERT_TRUE(outer.active());
    outer.Arg("iter", 3);
    outer.Arg("residual", 0.25);
    {
      TraceSpan inner("spmv", "spmv/multiply");
      ASSERT_TRUE(inner.active());
    }
  }
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner destructs first, so it lands first; both carry the same tid.
  EXPECT_EQ(events[0].name, "spmv/multiply");
  EXPECT_EQ(events[1].name, "pagerank/iteration");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[1].cat, "graph");
  EXPECT_NE(events[1].args.find("\"iter\":3"), std::string::npos);
  EXPECT_NE(events[1].args.find("\"residual\":0.25"), std::string::npos);
  // The inner span nests within the outer one on the timeline.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-3);
}

TEST_F(TracerTest, RingWrapDropsOldestAndCounts) {
  Tracer::Global().Enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    TraceEvent e;
    e.name = std::to_string(i);
    e.ts_us = static_cast<double>(i);
    Tracer::Global().Record(std::move(e));
  }
  EXPECT_EQ(Tracer::Global().size(), 8u);
  EXPECT_EQ(Tracer::Global().dropped(), 12u);
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: the survivors are events 12..19 in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].name, std::to_string(12 + i));
  }
}

TEST_F(TracerTest, ChromeExportIsWellFormed) {
  Tracer::Global().Enable();
  {
    TraceSpan span("preprocess", "preprocess/sort_columns");
    span.Arg("rows", static_cast<int64_t>(100));
    span.Arg("label", std::string("a\"b"));
  }
  std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"preprocess/sort_columns\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The quote inside the string arg must come out escaped.
  EXPECT_NE(json.find("\"label\":\"a\\\"b\""), std::string::npos);
  // Balanced braces/brackets outside string context (our own values are
  // escaped, so raw counting is a fair structural smoke check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TracerTest, FlowFieldsExportAsBindId) {
  Tracer::Global().Enable();
  {
    TraceSpan producer("serve", "serve/execute");
    producer.FlowOut(0x2a);
    TraceSpan consumer("query", "query/pagerank");
    consumer.FlowIn(0x2a);
  }
  std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"bind_id\":\"0x2a\",\"flow_out\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"bind_id\":\"0x2a\",\"flow_in\":true"),
            std::string::npos);
  // Spans with no flow linkage stay clean of flow keys.
  { TraceSpan plain("a", "a/b"); }
  json = Tracer::Global().ToChromeTraceJson();
  size_t binds = 0;
  for (size_t at = json.find("\"bind_id\""); at != std::string::npos;
       at = json.find("\"bind_id\"", at + 1)) {
    ++binds;
  }
  EXPECT_EQ(binds, 2u);
}

TEST_F(TracerTest, RingWrapIncrementsDroppedCounter) {
  Counter* dropped = MetricsRegistry::Global().GetCounter(
      "tilespmv_trace_dropped_total");
  const uint64_t before = dropped->Value();
  Tracer::Global().Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.name = "x";
    Tracer::Global().Record(std::move(e));
  }
  EXPECT_EQ(dropped->Value() - before, 6u);
  EXPECT_NE(Tracer::Global().ToChromeTraceJson().find("\"droppedSpans\":6"),
            std::string::npos);
}

TEST_F(TracerTest, EnableResetsClockAndBuffer) {
  Tracer::Global().Enable();
  { TraceSpan span("a", "a/b"); }
  EXPECT_EQ(Tracer::Global().size(), 1u);
  Tracer::Global().Enable();  // Re-enable starts fresh.
  EXPECT_EQ(Tracer::Global().size(), 0u);
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST_F(TracerTest, ConcurrentSpansAllLand) {
  Tracer::Global().Enable();
  constexpr int kThreads = 4, kSpansEach = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        TraceSpan span("test", "test/span");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Tracer::Global().size() + Tracer::Global().dropped(),
            static_cast<size_t>(kThreads * kSpansEach));
  // Distinct threads got distinct tids.
  std::vector<TraceEvent> events = Tracer::Global().Events();
  std::vector<int> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

// Recording overhead on the PageRank iteration loop stays under 3%. Both
// sides run the identical instrumented binary; the only difference is the
// tracer being enabled (spans recorded) versus disabled (spans no-op).
// min-of-N on both sides filters scheduler noise.
TEST_F(TracerTest, RecordedOverheadUnderThreePercentOnPageRank) {
  CsrMatrix a = GenerateRmat(5000, 60000, RmatOptions{.seed = 7});
  gpusim::DeviceSpec spec;
  auto kernel = CreateKernel("tile-composite", spec);
  ASSERT_NE(kernel, nullptr);
  ASSERT_TRUE(kernel->Setup(PageRankMatrix(a)).ok());
  PageRankOptions opts;
  // Fixed iteration count: identical work per run. Long enough that a run
  // takes a few milliseconds — the 3% margin must dominate scheduler and
  // frequency-scaling jitter, which is roughly constant per run.
  opts.max_iterations = 120;
  opts.tolerance = 0.0f;

  auto run_once = [&] {
    WallTimer t;
    Result<IterativeResult> r = RunPageRankPrepared(*kernel, opts);
    double s = t.Seconds();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value().iterations, opts.max_iterations);
    return s;
  };

  constexpr int kTrials = 25;
  double off = 1e30, on = 1e30;
  run_once();  // Warm caches before either timed side.
  for (int i = 0; i < kTrials; ++i) {
    Tracer::Global().Disable();
    off = std::min(off, run_once());
    Tracer::Global().Enable();
    on = std::min(on, run_once());
  }
  Tracer::Global().Disable();
  // 3% relative, plus a 100us absolute allowance for the per-run scheduler
  // and frequency-scaling jitter that min-of-N cannot fully filter on a
  // shared machine (it is constant per run, not proportional to the work).
  EXPECT_LT(on, off * 1.03 + 1e-4)
      << "tracing overhead " << (on / off - 1.0) * 100 << "% (off=" << off
      << "s on=" << on << "s)";
}

#endif  // SPMV_OBS_DISABLED

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);

  Gauge g;
  g.Set(2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
}

TEST(MetricsTest, HistogramBucketsSumAndWindowPercentiles) {
  Histogram h({1.0, 10.0, 100.0}, /*window=*/4);
  for (double v : {0.5, 5.0, 50.0, 500.0}) h.Observe(v);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 555.5 / 4);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + Inf.
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  // Window holds the last 4 samples; a flood of 7s evicts them all.
  for (int i = 0; i < 4; ++i) h.Observe(7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 7.0);
  // Bucket counts keep the full history even as the window slides.
  EXPECT_EQ(h.Count(), 8u);
}

TEST(MetricsTest, EmptyHistogramIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
}

TEST(MetricsTest, BucketGenerators) {
  std::vector<double> exp = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  std::vector<double> lin = LinearBuckets(10.0, 5.0, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[2], 20.0);
}

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("requests_total", "Requests");
  Counter* c2 = reg.GetCounter("requests_total");
  EXPECT_EQ(c1, c2);
  c1->Increment(3);
  EXPECT_EQ(c2->Value(), 3u);
  Histogram* h1 = reg.GetHistogram("latency", "Latency", {0.1, 1.0});
  Histogram* h2 = reg.GetHistogram("latency", "Latency", {0.5});  // Ignored.
  EXPECT_EQ(h1, h2);
}

TEST(MetricsTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("reqs_total", "Total requests")->Increment(5);
  reg.GetGauge("bytes", "Resident bytes")->Set(1024);
  Histogram* h = reg.GetHistogram("lat_seconds", "Latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# HELP reqs_total Total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  // Cumulative buckets: 1 <= 0.1, 2 <= 1.0, 3 <= +Inf.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3"), std::string::npos);
}

TEST(MetricsTest, JsonExportMentionsEveryInstrument) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Increment();
  reg.GetGauge("g")->Set(1.5);
  reg.GetHistogram("h", "", {1.0})->Observe(0.5);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"g\""), std::string::npos);
  EXPECT_NE(json.find("\"h\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsTest, ConcurrentObservationsAllCount) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hits_total");
  Histogram* h = reg.GetHistogram("obs", "", {0.5}, /*window=*/64);
  constexpr int kThreads = 4, kOpsEach = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kOpsEach; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 2));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads * kOpsEach));
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads * kOpsEach));
}

TEST(MetricsTest, PercentileEmptyWindowIsZeroAtEveryQuantile) {
  Histogram h({1.0}, /*window=*/8);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 0.0);
}

TEST(MetricsTest, PercentileSingleSampleIsThatSample) {
  Histogram h({1.0}, /*window=*/8);
  h.Observe(3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 3.5);
  // Out-of-range quantiles clamp instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(h.Percentile(-10.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(250.0), 3.5);
}

TEST(MetricsTest, PercentileBoundariesAreMinAndMax) {
  Histogram h({100.0}, /*window=*/8);
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.Observe(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 4.0);
  // Linear interpolation between order statistics: rank 1.5 of {1,2,3,4}.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 2.5);
}

TEST(MetricsTest, PercentileWindowWrapAtExactlyWindowObservations) {
  constexpr size_t kWindow = 4;
  Histogram h({100.0}, kWindow);
  // Exactly `window` observations: nothing evicted yet, min/max intact.
  for (double v : {10.0, 20.0, 30.0, 40.0}) h.Observe(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 40.0);
  // Observation window+1 evicts the oldest sample (10) and only it.
  h.Observe(50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 50.0);
  // The cumulative count keeps the full history regardless of the window.
  EXPECT_EQ(h.Count(), kWindow + 1);
}

// --- Query journal / flight recorder. ---

QueryRecord MakeRecord(uint64_t id, double total_seconds,
                       bool deadline_missed = false) {
  QueryRecord r;
  r.query_id = id;
  r.kind = "pagerank";
  r.total_seconds = total_seconds;
  r.stages[QueryStage::kExecute] = total_seconds;
  r.deadline_missed = deadline_missed;
  return r;
}

TEST(QueryJournalTest, IdsStartAtOneAndIncrement) {
  QueryJournal journal;
  EXPECT_EQ(journal.NextId(), 1u);
  EXPECT_EQ(journal.NextId(), 2u);
  EXPECT_EQ(journal.NextId(), 3u);
}

TEST(QueryJournalTest, RingBoundsRecordsAndCountsDrops) {
  QueryJournal::Options opts;
  opts.capacity = 4;
  QueryJournal journal(opts);
  for (uint64_t i = 1; i <= 10; ++i) journal.Record(MakeRecord(i, 1e-3));
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped(), 6u);
  std::vector<QueryRecord> records = journal.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first: the survivors are 7..10 in arrival order.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].query_id, 7 + i);
  }
}

TEST(QueryJournalTest, DeadlineMissTriggersDump) {
  QueryJournal::Options opts;
  opts.dump_on_deadline_miss = true;
  QueryJournal journal(opts);
  journal.Record(MakeRecord(1, 1e-3));
  journal.Record(MakeRecord(2, 1e-3, /*deadline_missed=*/true));
  journal.Record(MakeRecord(3, 1e-3));
  EXPECT_EQ(journal.dumped_total(), 1u);
  std::vector<QueryRecord> dumps = journal.Dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].query_id, 2u);
  EXPECT_TRUE(dumps[0].deadline_missed);
}

TEST(QueryJournalTest, SlowThresholdTriggersDump) {
  QueryJournal::Options opts;
  opts.dump_on_deadline_miss = false;
  opts.slow_seconds = 0.5;
  QueryJournal journal(opts);
  journal.Record(MakeRecord(1, 0.1));
  journal.Record(MakeRecord(2, 0.9));
  journal.Record(MakeRecord(3, 0.5));  // At-threshold counts as slow.
  EXPECT_EQ(journal.dumped_total(), 2u);
  std::vector<QueryRecord> dumps = journal.Dumps();
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[0].query_id, 2u);
  EXPECT_EQ(dumps[1].query_id, 3u);
}

TEST(QueryJournalTest, DumpRetentionRingKeepsNewest) {
  QueryJournal::Options opts;
  opts.slow_seconds = 0.01;
  opts.dump_retention = 2;
  QueryJournal journal(opts);
  for (uint64_t i = 1; i <= 5; ++i) journal.Record(MakeRecord(i, 1.0));
  EXPECT_EQ(journal.dumped_total(), 5u);
  std::vector<QueryRecord> dumps = journal.Dumps();
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[0].query_id, 4u);
  EXPECT_EQ(dumps[1].query_id, 5u);
}

TEST(QueryJournalTest, DumpPathAppendsOneJsonLinePerDump) {
  std::string path = ::testing::TempDir() + "flight_dump_test.jsonl";
  std::remove(path.c_str());
  QueryJournal::Options opts;
  opts.slow_seconds = 0.5;
  opts.dump_path = path;
  QueryJournal journal(opts);
  journal.Record(MakeRecord(1, 0.1));  // Fast: no dump line.
  journal.Record(MakeRecord(2, 0.9));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  std::string contents(buf, n);
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 1);
  EXPECT_NE(contents.find("\"query_id\":2"), std::string::npos);
  EXPECT_NE(contents.find("\"status\":\"OK\""), std::string::npos);
}

TEST(QueryJournalTest, ToJsonCarriesSchemaStagesAndCounts) {
  QueryJournal::Options opts;
  opts.capacity = 2;
  QueryJournal journal(opts);
  QueryRecord r = MakeRecord(1, 0.25);
  r.stages[QueryStage::kQueue] = 0.05;
  r.code = StatusCode::kDeadlineExceeded;
  r.panel_width = 8;
  r.panel_column = 3;
  journal.Record(r);
  journal.Record(MakeRecord(2, 1e-3));
  journal.Record(MakeRecord(3, 1e-3));  // Capacity 2: evicts record 1.
  std::string json = journal.ToJson();
  EXPECT_NE(json.find("\"schema\":\"tilespmv-query-log-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"query_id\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"query_id\":1"), std::string::npos);
  // Every stage name appears in each record's stages_ms map.
  for (int i = 0; i < kNumQueryStages; ++i) {
    EXPECT_NE(json.find(std::string("\"") + QueryStageName(i) + "\":"),
              std::string::npos);
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(QueryJournalTest, StagesSumMatchesComponents) {
  QueryStages stages;
  stages[QueryStage::kAdmission] = 0.001;
  stages[QueryStage::kQueue] = 0.01;
  stages[QueryStage::kExecute] = 0.1;
  stages[QueryStage::kReply] = 0.002;
  EXPECT_DOUBLE_EQ(stages.Sum(), 0.113);
}

TEST(QueryJournalTest, StatusAndStageNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(QueryStageName(QueryStage::kCoalesce), "coalesce");
  EXPECT_STREQ(QueryStageName(99), "unknown");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace tilespmv::obs
