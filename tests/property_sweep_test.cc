// Parameterized property sweeps: structural invariants that must hold for
// every workload size, tile width, and device — the knobs the auto-tuner
// turns. These catch boundary bugs (padding, offsets, clamping) that fixed
// examples miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/composite.h"
#include "core/tile_composite.h"
#include "core/tiling.h"
#include "gen/power_law.h"
#include "sparse/permute.h"
#include "util/random.h"

namespace tilespmv {
namespace {

using gpusim::DeviceSpec;

CsrMatrix SweepMatrix() {
  static const CsrMatrix* kMatrix =
      new CsrMatrix(GenerateRmat(4000, 40000, RmatOptions{.seed = 71}));
  return *kMatrix;
}

// ---------------------------------------------------------------- composite
class CompositeSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(CompositeSweep, InvariantsHoldForEveryWorkloadSize) {
  const int64_t wl_size = GetParam();
  DeviceSpec spec;
  CsrMatrix tile = SweepMatrix();
  CompositeTile ct = BuildComposite(tile, wl_size, spec, true);

  // Every occupied row appears in exactly one workload, in ranking order.
  int64_t covered = 0;
  int32_t expect_pos = 0;
  int64_t prev_end = -1;
  for (const Workload& wl : ct.workloads) {
    ASSERT_EQ(wl.first_pos, expect_pos);
    ASSERT_GE(wl.h, 1);
    ASSERT_EQ(wl.w, ct.row_len[wl.first_pos]);
    // Storage rectangles are disjoint and ordered.
    ASSERT_GT(wl.storage_offset, prev_end);
    prev_end = wl.storage_offset + wl.PaddedFloats() - 1;
    // Padding rule: one dimension is a warp multiple.
    if (wl.row_major) {
      ASSERT_EQ(wl.padded_w % spec.warp_size, 0);
      ASSERT_GE(wl.w, wl.h);
    } else {
      ASSERT_EQ(wl.padded_h % spec.warp_size, 0);
      ASSERT_LT(wl.w, wl.h);
    }
    // Multi-row workloads never exceed the workload size.
    if (wl.h > 1) {
      int64_t packed = 0;
      for (int32_t i = wl.first_pos; i < wl.first_pos + wl.h; ++i)
        packed += ct.row_len[i];
      ASSERT_LE(packed, std::max(wl_size, ct.row_len[wl.first_pos]));
    }
    covered += wl.h;
    expect_pos += wl.h;
  }
  EXPECT_EQ(covered, ct.occupied_rows());
  EXPECT_EQ(ct.total_padded_floats, prev_end + 1);
}

INSTANTIATE_TEST_SUITE_P(WorkloadSizes, CompositeSweep,
                         ::testing::Values(1, 17, 32, 100, 513, 4096, 32768,
                                           1000000));

// ------------------------------------------------------------------ tiling
class TilingSweep : public ::testing::TestWithParam<int32_t> {};

TEST_P(TilingSweep, NnzConservedForEveryTileWidth) {
  const int32_t width = GetParam();
  CsrMatrix a = SweepMatrix();
  CsrMatrix sorted = ApplyColumnPermutation(a, SortColumnsByLengthDesc(a));
  TilingOptions opts;
  opts.tile_width = width;
  TiledMatrix t = BuildTiling(sorted, opts);
  EXPECT_EQ(t.nnz(), a.nnz());
  // Tile-local column indices stay inside their tile.
  for (const TileSlice& s : t.dense_tiles) {
    for (int32_t c : s.local.col_idx) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, s.col_end - s.col_begin);
    }
  }
  // Sparse part only holds columns past the dense boundary.
  for (int32_t c : t.sparse_part.col_idx) {
    ASSERT_GE(c, t.dense_col_end);
  }
}

INSTANTIATE_TEST_SUITE_P(TileWidths, TilingSweep,
                         ::testing::Values(1, 7, 32, 100, 512, 4096, 65536));

// ------------------------------------------------- kernel x device matrix
class KernelDeviceSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(KernelDeviceSweep, CorrectOnBothDevices) {
  const char* name = std::get<0>(GetParam());
  DeviceSpec spec = std::get<1>(GetParam()) == 0
                        ? DeviceSpec::TeslaC1060()
                        : DeviceSpec::FermiC2050();
  CsrMatrix a = SweepMatrix();
  auto kernel = CreateKernel(name, spec);
  ASSERT_NE(kernel, nullptr);
  ASSERT_TRUE(kernel->Setup(a).ok()) << name;
  Pcg32 rng(72);
  std::vector<float> x(a.cols);
  for (float& v : x) v = rng.NextFloat();
  std::vector<float> want, got;
  CsrMultiply(a, x, &want);
  MultiplyOriginal(*kernel, x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs) << name << " row " << i;
  }
  EXPECT_GT(kernel->timing().gflops(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsTimesDevices, KernelDeviceSweep,
    ::testing::Combine(::testing::Values("csr", "csr-vector", "bsk-bdw",
                                         "coo", "hyb", "tile-coo",
                                         "tile-composite"),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      std::string s = std::string(std::get<0>(info.param)) +
                      (std::get<1>(info.param) == 0 ? "_tesla" : "_fermi");
      std::replace(s.begin(), s.end(), '-', '_');
      return s;
    });

// --------------------------------------------- forced tile-composite knobs
class ForcedWorkloadSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ForcedWorkloadSweep, KernelStaysCorrectUnderAnyForcedSize) {
  DeviceSpec spec;
  TileCompositeOptions opts;
  opts.forced_workload = GetParam();
  TileCompositeKernel kernel(spec, opts);
  CsrMatrix a = SweepMatrix();
  ASSERT_TRUE(kernel.Setup(a).ok());
  std::vector<float> x(a.cols, 0.5f), want, got;
  CsrMultiply(a, x, &want);
  MultiplyOriginal(kernel, x, &got);
  double max_abs = 1.0;
  for (float w : want) max_abs = std::max(max_abs, std::fabs(double{w}));
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4 * max_abs);
  }
}

INSTANTIATE_TEST_SUITE_P(ForcedSizes, ForcedWorkloadSweep,
                         ::testing::Values(1, 64, 1000, 50000));

}  // namespace
}  // namespace tilespmv
