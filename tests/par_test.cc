// Unit tests for the par::ThreadPool work-stealing runtime: exact range
// coverage under both chunking policies, nested-loop inlining, concurrent
// regions from external threads (the serving engine's usage pattern),
// fixed-block reduction determinism, and the TILESPMV_THREADS env contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "par/pool.h"
#include "par/taskgraph.h"

namespace tilespmv::par {
namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

TEST(ParallelFor, CoversRangeExactlyOnceStatic) {
  ThreadPool pool(4);
  std::vector<int> touched(10001, 0);
  LoopOptions options;
  options.grain = 16;
  options.chunking = Chunking::kStatic;
  pool.ParallelFor(0, 10001, options, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, CoversRangeExactlyOnceGuided) {
  ThreadPool pool(4);
  std::vector<int> touched(9973, 0);
  LoopOptions options;
  options.grain = 8;
  options.chunking = Chunking::kGuided;
  pool.ParallelFor(0, 9973, options, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, NonZeroBeginAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  LoopOptions options;
  options.grain = 4;
  pool.ParallelFor(100, 200, options, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
  bool ran = false;
  pool.ParallelFor(5, 5, options, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  for (const Chunking chunking : {Chunking::kStatic, Chunking::kGuided}) {
    LoopOptions options;
    options.chunking = chunking;
    pool.ParallelFor(0, 0, options, [&](int64_t, int64_t) { ++calls; });
    pool.ParallelFor(42, 42, options, [&](int64_t, int64_t) { ++calls; });
    // An inverted range is an empty range, not an error.
    pool.ParallelFor(10, 3, options, [&](int64_t, int64_t) { ++calls; });
  }
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  std::mutex mu;
  LoopOptions options;
  options.grain = 1 << 20;  // Far larger than the 100-element range.
  pool.ParallelFor(7, 107, options, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 7);
  EXPECT_EQ(chunks[0].second, 107);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool pool(4);
  for (const Chunking chunking : {Chunking::kStatic, Chunking::kGuided}) {
    std::atomic<int> calls{0};
    int64_t seen_b = -1, seen_e = -1;
    LoopOptions options;
    options.grain = 1;
    options.chunking = chunking;
    pool.ParallelFor(5, 6, options, [&](int64_t b, int64_t e) {
      ++calls;
      seen_b = b;
      seen_e = e;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen_b, 5);
    EXPECT_EQ(seen_e, 6);
  }
}

TEST(ParallelFor, NestedInsideTaskGraphBodyRunsInline) {
  // Kernel code issues ParallelFor from inside task bodies (a task-graph
  // task calling Multiply, which loops). The nested loop must inline on the
  // draining thread — no deadlock, no double fan-out — and still cover its
  // range exactly once per task.
  TaskGraph graph;
  const int32_t a = graph.AddTask("test/a");
  const int32_t b = graph.AddTask("test/b");
  graph.AddDep(b, a);
  graph.Freeze();
  std::vector<std::vector<int>> touched(2, std::vector<int>(2048, 0));
  RunTaskGraph(graph, [&](int32_t task) {
    LoopOptions options;
    options.grain = 8;
    ParallelFor(0, 2048, options, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) ++touched[task][i];
    });
  });
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 2048; ++i) {
      ASSERT_EQ(touched[t][i], 1) << "task " << t << " index " << i;
    }
  }
}

TEST(ParallelFor, NestedLoopsRunInline) {
  ThreadPool pool(4);
  std::vector<int> touched(4096, 0);
  LoopOptions outer;
  outer.grain = 1;
  pool.ParallelFor(0, 4, outer, [&](int64_t b0, int64_t e0) {
    for (int64_t b = b0; b < e0; ++b) {
      LoopOptions inner;
      inner.grain = 8;
      // Must not deadlock or fan out; runs inline on this thread.
      pool.ParallelFor(b * 1024, (b + 1) * 1024, inner,
                       [&](int64_t i0, int64_t i1) {
                         for (int64_t i = i0; i < i1; ++i) ++touched[i];
                       });
    }
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, ConcurrentRegionsFromExternalThreads) {
  // The serving engine's pattern: several request workers submit loops to
  // the same pool at once. Every loop must complete with full coverage.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int64_t kItems = 20000;
  std::vector<std::vector<int>> touched(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    touched[s].assign(kItems, 0);
    submitters.emplace_back([&pool, &touched, s] {
      LoopOptions options;
      options.grain = 64;
      options.chunking = s % 2 == 0 ? Chunking::kStatic : Chunking::kGuided;
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(0, kItems, options, [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) ++touched[s][i];
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (int64_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(touched[s][i], 20) << "submitter " << s << " index " << i;
    }
  }
}

TEST(ParallelReduce, BitwiseIdenticalAcrossThreadCounts) {
  // A float-ish reduction whose value depends on summation order: the
  // fixed-block recipe must give the same bits at every pool size.
  const int64_t n = 100000;
  std::vector<double> values(n);
  for (int64_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto run = [&](int threads) {
    ThreadPool::SetGlobalThreadCount(threads);
    return ParallelReduce<double>(
        0, n, kReduceBlock, 0.0,
        [&](int64_t lo, int64_t hi) {
          double local = 0.0;
          for (int64_t i = lo; i < hi; ++i) local += values[i];
          return local;
        },
        [](double a, double b) { return a + b; });
  };
  const double at1 = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(DoubleBits(run(threads)), DoubleBits(at1))
        << threads << " threads";
  }
  ThreadPool::SetGlobalThreadCount(0);
}

TEST(ThreadPool, StatsCountRegionsAndTasks) {
  ThreadPool pool(4);
  PoolStats before = pool.stats();
  LoopOptions options;
  options.grain = 1;
  for (int i = 0; i < 5; ++i) {
    pool.ParallelFor(0, 1000, options, [](int64_t, int64_t) {});
  }
  PoolStats after = pool.stats();
  EXPECT_EQ(after.regions - before.regions, 5u);
  EXPECT_GT(after.tasks, before.tasks);
}

TEST(ThreadPool, DefaultThreadCountReadsEnv) {
  setenv("TILESPMV_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  setenv("TILESPMV_THREADS", "junk", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  setenv("TILESPMV_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  unsetenv("TILESPMV_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPool, ResizeChangesParticipants) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  pool.Resize(6);
  EXPECT_EQ(pool.num_threads(), 6);
  std::vector<int> touched(5000, 0);
  LoopOptions options;
  options.grain = 16;
  pool.ParallelFor(0, 5000, options, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i], 1) << "index " << i;
  }
  pool.Resize(1);
  EXPECT_EQ(pool.num_threads(), 1);
}

}  // namespace
}  // namespace tilespmv::par
