#include <gtest/gtest.h>

#include <cmath>

#include "sparse/convert.h"
#include "util/random.h"

namespace tilespmv {
namespace {

CsrMatrix RandomMatrix(int32_t rows, int32_t cols, int64_t nnz,
                       uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Triplet> t;
  for (int64_t i = 0; i < nnz; ++i) {
    t.push_back(Triplet{static_cast<int32_t>(rng.NextBounded(rows)),
                        static_cast<int32_t>(rng.NextBounded(cols)),
                        rng.NextFloat() + 0.1f});
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(t));
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  CsrMatrix m = RandomMatrix(30, 50, 200, 31);
  CsrMatrix tt = Transpose(Transpose(m));
  EXPECT_EQ(tt.rows, m.rows);
  EXPECT_EQ(tt.cols, m.cols);
  EXPECT_EQ(tt.row_ptr, m.row_ptr);
  EXPECT_EQ(tt.col_idx, m.col_idx);
  EXPECT_EQ(tt.values, m.values);
}

TEST(TransposeTest, EntriesSwapIndices) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 3, {{0, 2, 5.0f}, {1, 0, 7.0f}});
  CsrMatrix t = Transpose(m);
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.RowLength(0), 1);
  EXPECT_EQ(t.RowLength(2), 1);
  EXPECT_FLOAT_EQ(t.values[0], 7.0f);  // (0,1) in transpose.
}

TEST(NormalizeTest, RowsSumToOne) {
  CsrMatrix m = RandomMatrix(40, 40, 300, 32);
  CsrMatrix w = RowNormalize(m);
  for (int32_t r = 0; r < w.rows; ++r) {
    if (w.RowLength(r) == 0) continue;
    double sum = 0;
    for (int64_t k = w.row_ptr[r]; k < w.row_ptr[r + 1]; ++k)
      sum += w.values[k];
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(NormalizeTest, ColumnsSumToOne) {
  CsrMatrix m = RandomMatrix(40, 40, 300, 33);
  CsrMatrix w = ColNormalize(m);
  std::vector<double> sums(40, 0.0);
  for (int32_t r = 0; r < w.rows; ++r) {
    for (int64_t k = w.row_ptr[r]; k < w.row_ptr[r + 1]; ++k)
      sums[w.col_idx[k]] += w.values[k];
  }
  std::vector<int64_t> lens = w.ColLengths();
  for (int32_t c = 0; c < 40; ++c) {
    if (lens[c] > 0) {
      EXPECT_NEAR(sums[c], 1.0, 1e-4);
    }
  }
}

TEST(SymmetrizeTest, ResultIsSymmetricWithUnitValues) {
  CsrMatrix m = RandomMatrix(60, 60, 250, 34);
  CsrMatrix s = Symmetrize(m);
  CsrMatrix st = Transpose(s);
  EXPECT_EQ(s.row_ptr, st.row_ptr);
  EXPECT_EQ(s.col_idx, st.col_idx);
  for (float v : s.values) EXPECT_FLOAT_EQ(v, 1.0f);
  // Every original edge must be present.
  EXPECT_GE(s.nnz(), m.nnz());
}

TEST(HitsMatrixTest, BlockStructure) {
  CsrMatrix a = CsrMatrix::FromTriplets(3, 3, {{0, 1, 1.0f}, {2, 0, 1.0f}});
  CsrMatrix m = BuildHitsMatrix(a);
  EXPECT_EQ(m.rows, 6);
  EXPECT_EQ(m.cols, 6);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_TRUE(m.Validate().ok());
  // Top-left and bottom-right blocks must be empty.
  for (int32_t r = 0; r < 3; ++r) {
    for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k)
      EXPECT_GE(m.col_idx[k], 3);
  }
  for (int32_t r = 3; r < 6; ++r) {
    for (int64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k)
      EXPECT_LT(m.col_idx[k], 3);
  }
}

TEST(HitsMatrixTest, MultiplyComputesBothProducts) {
  CsrMatrix a = RandomMatrix(20, 20, 80, 35);
  CsrMatrix m = BuildHitsMatrix(a);
  std::vector<float> v(40);
  Pcg32 rng(36);
  for (float& f : v) f = rng.NextFloat();
  std::vector<float> y;
  CsrMultiply(m, v, &y);
  // Top half should be A^T * h where h = v[20..40).
  CsrMatrix at = Transpose(a);
  std::vector<float> h(v.begin() + 20, v.end());
  std::vector<float> want_a;
  CsrMultiply(at, h, &want_a);
  for (int i = 0; i < 20; ++i) EXPECT_NEAR(y[i], want_a[i], 1e-4);
  // Bottom half should be A * a where a = v[0..20).
  std::vector<float> avec(v.begin(), v.begin() + 20);
  std::vector<float> want_h;
  CsrMultiply(a, avec, &want_h);
  for (int i = 0; i < 20; ++i) EXPECT_NEAR(y[20 + i], want_h[i], 1e-4);
}

}  // namespace
}  // namespace tilespmv
